"""Figures 20/21: memory-hierarchy energy (baseline / TCOR w/o L2
enhancements / TCOR).

Paper shape: 14.1% (64 KiB) and 13.6% (128 KiB) average decrease with
the full design, ~9% without the L2 enhancements; high-geometry
benchmarks (Snp, SWa) save the most.
"""

from __future__ import annotations

from repro.energy import EnergyModel, memory_hierarchy_energy
from repro.experiments.common import (
    DEFAULT_SCALE,
    TILE_CACHE_SIZES,
    ExperimentResult,
    SimulationCache,
)

PAPER_DECREASE = {
    "64KiB": {"CCS": 8.5, "SoD": 5.9, "TRu": 22.0, "SWa": 24.9,
              "CRa": 17.4, "RoK": 3.4, "DDS": 14.3, "Snp": 24.2,
              "Mze": 7.5, "GTr": 12.5, "average": 14.1},
    "128KiB": {"CCS": 6.5, "SoD": 4.6, "TRu": 19.9, "SWa": 24.9,
               "CRa": 17.6, "RoK": 2.2, "DDS": 15.4, "Snp": 24.0,
               "Mze": 8.4, "GTr": 12.6, "average": 13.6},
}


def run_one(size_label: str, scale: float = DEFAULT_SCALE,
            cache: SimulationCache | None = None) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    size = TILE_CACHE_SIZES[size_label]
    model = EnergyModel.default()
    rows = []
    full_decreases = []
    partial_decreases = []
    for alias in cache.aliases:
        base_nj = memory_hierarchy_energy(cache.baseline(alias, size), model)
        no_l2_nj = memory_hierarchy_energy(
            cache.tcor(alias, size, l2_enhancements=False), model)
        tcor_nj = memory_hierarchy_energy(cache.tcor(alias, size), model)
        partial = 100 * (1 - no_l2_nj / base_nj)
        full = 100 * (1 - tcor_nj / base_nj)
        partial_decreases.append(partial)
        full_decreases.append(full)
        rows.append([
            alias, round(base_nj / 1e6, 3), round(no_l2_nj / 1e6, 3),
            round(tcor_nj / 1e6, 3), round(partial, 1), round(full, 1),
            PAPER_DECREASE[size_label][alias],
        ])
    rows.append(["average", "", "", "",
                 round(sum(partial_decreases) / len(partial_decreases), 1),
                 round(sum(full_decreases) / len(full_decreases), 1),
                 PAPER_DECREASE[size_label]["average"]])
    fig = "fig20" if size_label == "64KiB" else "fig21"
    return ExperimentResult(
        exp_id=fig,
        title=f"Memory hierarchy energy ({size_label} Tile Cache)",
        headers=["bench", "baseline_mJ", "no_l2_mJ", "tcor_mJ",
                 "no_l2_decrease_%", "tcor_decrease_%", "paper_decrease_%"],
        rows=rows,
        notes="the dead-line L2 contributes the DRAM-side savings on top "
              "of the L1 reorganization",
    )


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None) -> list[ExperimentResult]:
    cache = cache or SimulationCache(scale=scale)
    return [run_one("64KiB", scale, cache), run_one("128KiB", scale, cache)]
