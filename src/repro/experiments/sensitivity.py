"""Sensitivity studies beyond the paper's figures.

Three sweeps the paper's design section motivates but does not plot:

- **Traversal order** — OPT Numbers are ranks *in the traversal*, so the
  mechanism works under any fixed order; this quantifies how much the
  order itself matters.
- **Tile Cache split** — the paper fixes 16 KiB lists + 48 KiB
  attributes; this sweeps the split at a constant 64 KiB budget.
- **L2 size** — the dead-line L2's PB elimination depends on the PB
  fitting; this sweeps the L2 against a large-footprint benchmark.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import DEFAULT_GPU, CacheConfig, TCORConfig
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    SimulationCache,
)
from repro.api import SimulationConfig, simulate
from repro.geometry.traversal import TraversalOrder
from repro.workloads.suite import BENCHMARKS, build_workload

KIB = 1024


def _sim(workload, **config_kwargs):
    """One simulation through the public facade — replay-eligible
    (every sweep here stays inside the kernels' geometry envelope),
    with the live simulator as automatic fallback."""
    return simulate(workload, SimulationConfig(**config_kwargs)).result


def run_traversal_orders(alias: str = "TRu", scale: float = DEFAULT_SCALE,
                         cache: SimulationCache | None = None) -> ExperimentResult:
    """TCOR effectiveness under each tile traversal order."""
    rows = []
    for order in TraversalOrder:
        workload = build_workload(BENCHMARKS[alias], scale=scale,
                                  order=order)
        base = _sim(workload, kind="baseline")
        tcor = _sim(workload)
        rows.append([
            order.value,
            round(tcor.attr_read_hit_ratio, 3),
            round(100 * (1 - tcor.pb_l2_accesses / base.pb_l2_accesses), 1),
            round(100 * (1 - tcor.mm_accesses / base.mm_accesses), 1),
        ])
    return ExperimentResult(
        exp_id="sens-traversal",
        title=f"Tile traversal order sensitivity ({alias})",
        headers=["order", "attr_hit_ratio", "pb_l2_decrease_%",
                 "mm_decrease_%"],
        rows=rows,
        notes="OPT Numbers adapt to any fixed order; differences come "
              "from the orders' spatial locality",
    )


def run_tile_cache_split(alias: str = "Snp", scale: float = DEFAULT_SCALE,
                         cache: SimulationCache | None = None) -> ExperimentResult:
    """Primitive-List vs Attribute budget split at a fixed 64 KiB."""
    workload = (cache.workload(alias) if cache
                else build_workload(BENCHMARKS[alias], scale=scale))
    base = _sim(workload, kind="baseline")
    rows = []
    for pl_kib in (8, 16, 24, 32):
        attr_kib = 64 - pl_kib
        tcor_config = TCORConfig(
            primitive_list_cache=CacheConfig("primitive_list",
                                             pl_kib * KIB),
            attribute_buffer_bytes=attr_kib * KIB,
        )
        tcor = _sim(workload, tcor=tcor_config)
        rows.append([
            f"{pl_kib}+{attr_kib}",
            round(tcor.attr_read_hit_ratio, 3),
            round(100 * (1 - tcor.pb_l2_accesses / base.pb_l2_accesses), 1),
        ])
    return ExperimentResult(
        exp_id="sens-split",
        title=f"Tile Cache split sweep at 64 KiB ({alias})",
        headers=["pl+attr_kib", "attr_hit_ratio", "pb_l2_decrease_%"],
        rows=rows,
        notes="the paper's 16+48 split; attributes benefit from capacity "
              "far more than the single-use lists",
    )


def run_l2_size(alias: str = "DDS", scale: float = DEFAULT_SCALE,
                cache: SimulationCache | None = None) -> ExperimentResult:
    """Dead-line L2 effectiveness vs L2 capacity (PB-spill behaviour)."""
    workload = (cache.workload(alias) if cache
                else build_workload(BENCHMARKS[alias], scale=scale))
    rows = []
    for l2_kib in (256, 512, 1024, 2048):
        gpu = replace(DEFAULT_GPU,
                      l2_cache=replace(DEFAULT_GPU.l2_cache,
                                       size_bytes=l2_kib * KIB))
        base = _sim(workload, kind="baseline", gpu=gpu)
        tcor = _sim(workload, gpu=gpu)
        elimination = 100 * (1 - tcor.pb_mm_accesses
                             / max(1, base.pb_mm_accesses))
        rows.append([l2_kib, base.pb_mm_accesses, tcor.pb_mm_accesses,
                     round(elimination, 1)])
    return ExperimentResult(
        exp_id="sens-l2",
        title=f"L2 capacity vs PB main-memory elimination ({alias})",
        headers=["l2_kib", "baseline_pb_mm", "tcor_pb_mm",
                 "elimination_%"],
        rows=rows,
        notes="elimination saturates once the live Parameter Buffer fits "
              "the L2 (paper: DDS at 1.8 MiB cannot fit a 1 MiB L2)",
    )


def run_hierarchical_lists(scale: float = DEFAULT_SCALE,
                           cache: SimulationCache | None = None) -> ExperimentResult:
    """PMD savings of Hsiao-style hierarchical lists across the suite.

    The related-work structure (paper Section VI) stores group-covering
    primitives once per 2x2 tile group; this measures what it would save
    each benchmark — and why the flat structure TCOR needs (one PMD per
    (tile, primitive), each with its own OPT Number) is still cheap.
    """
    from repro.pbuffer.hierarchical import HierarchicalLists

    cache = cache or SimulationCache(scale=scale)
    rows = []
    for alias in cache.aliases:
        workload = cache.workload(alias)
        lists = HierarchicalLists(workload.scenes[0])
        flat = lists.flat_pmds()
        rows.append([
            alias, flat, lists.total_pmds(),
            round(100 * lists.pmd_savings(), 1),
            round(workload.measured_reuse(), 2),
        ])
    return ExperimentResult(
        exp_id="sens-hierarchy",
        title="Hierarchical lists: PMD savings vs the flat structure",
        headers=["bench", "flat_pmds", "hier_pmds", "savings_%",
                 "avg_reuse"],
        rows=rows,
        notes="savings need primitives that fully cover 2x2 tile groups; "
              "per-PMD OPT Numbers (TCOR) require the flat structure",
    )


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None) -> list[ExperimentResult]:
    return [
        run_traversal_orders(scale=scale, cache=cache),
        run_tile_cache_split(scale=scale, cache=cache),
        run_l2_size(scale=scale, cache=cache),
        run_hierarchical_lists(scale=scale, cache=cache),
    ]
