"""The benchmark suite (paper Table II).

Ten synthetic workloads stand in for the ten commercial Android games.
Each :class:`BenchmarkSpec` records the *published* characteristics —
Parameter Buffer footprint, average primitive reuse, plus the texture
footprint and shader length where the paper states them (RoK's 6.8 MiB
and SWa's 0.4 MiB textures; CCS's 4 and DDS's 20 instructions/pixel) —
and the scene generator synthesizes geometry matching them.  Values the
paper does not publish are our assumptions, chosen to keep each
benchmark's Parameter Buffer share of total memory traffic in the band
Figure 18 implies, and are flagged in EXPERIMENTS.md.

The primitive count is derived from the footprint model::

    footprint = P * (mean_attrs * 64 B) + P * reuse * 4 B
                 (block-aligned attributes)   (PMDs)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config import DEFAULT_GPU, ParameterBufferConfig, ScreenConfig
from repro.geometry.generator import SceneGenerator, SceneParameters
from repro.geometry.scene import Scene
from repro.geometry.traversal import TraversalOrder
from repro.tiling.engine import TilingEngine, TilingTrace

MIB = 1024 * 1024


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table II row (paper-published values + our assumptions)."""

    alias: str
    name: str
    installs_millions: int
    genre: str
    is_2d: bool
    pb_footprint_mib: float      # published
    avg_reuse: float             # published
    texture_mib: float           # published for RoK/SWa, assumed otherwise
    shader_insts_per_pixel: int  # published for CCS/DDS, assumed otherwise
    coverage_fraction: float = 0.45  # tuned to the paper's prims/tile quotes
    mean_attributes: float = 3.0
    seed: int = 0

    def num_primitives(self,
                       pbuffer: ParameterBufferConfig | None = None) -> int:
        pbuffer = pbuffer or ParameterBufferConfig()
        per_prim = (self.mean_attributes * pbuffer.attribute_stride
                    + self.avg_reuse * pbuffer.pmd_bytes)
        return max(16, round(self.pb_footprint_mib * MIB / per_prim))


_SPECS = [
    BenchmarkSpec("CCS", "Candy Crush Saga", 1000, "Puzzle", True,
                  0.17, 5.9, texture_mib=1.2, shader_insts_per_pixel=4,
                  coverage_fraction=0.8, seed=101),
    BenchmarkSpec("SoD", "Sonic Dash", 100, "Arcade", False,
                  0.14, 6.9, texture_mib=1.8, shader_insts_per_pixel=8,
                  seed=102),
    BenchmarkSpec("TRu", "Temple Run", 500, "Arcade", False,
                  0.55, 2.8, texture_mib=1.0, shader_insts_per_pixel=9,
                  coverage_fraction=0.45, seed=103),
    BenchmarkSpec("SWa", "Shoot Strike War Fire", 10, "Shooter", False,
                  0.28, 3.7, texture_mib=0.4, shader_insts_per_pixel=10,
                  seed=104),
    BenchmarkSpec("CRa", "City Racing 3D", 50, "Racing", False,
                  0.86, 2.0, texture_mib=0.8, shader_insts_per_pixel=12,
                  seed=105),
    BenchmarkSpec("RoK", "Rise of Kingdoms: Lost Crusade", 10, "Strategy",
                  True, 0.2, 3.6, texture_mib=6.8, shader_insts_per_pixel=6,
                  coverage_fraction=0.7, seed=106),
    BenchmarkSpec("DDS", "Derby Destruction Simulator", 10, "Racing", False,
                  1.81, 1.4, texture_mib=2.0, shader_insts_per_pixel=20,
                  coverage_fraction=0.43, seed=107),
    BenchmarkSpec("Snp", "Sniper 3D", 500, "Shooter", False,
                  0.71, 1.47, texture_mib=0.6, shader_insts_per_pixel=14,
                  seed=108),
    BenchmarkSpec("Mze", "3D Maze 2: Diamonds & Ghosts", 10, "Arcade", False,
                  1.22, 2.4, texture_mib=1.5, shader_insts_per_pixel=10,
                  seed=109),
    BenchmarkSpec("GTr", "Gravitytetris", 5, "Puzzle", False,
                  0.12, 6.9, texture_mib=1.0, shader_insts_per_pixel=5,
                  seed=110),
]

BENCHMARKS: dict[str, BenchmarkSpec] = {spec.alias: spec for spec in _SPECS}
BENCHMARK_ORDER: tuple[str, ...] = tuple(spec.alias for spec in _SPECS)


@dataclass
class Workload:
    """A benchmark instantiated at some scale: frames + their traces."""

    spec: BenchmarkSpec
    screen: ScreenConfig
    scale: float
    scenes: list[Scene]
    traces: list[TilingTrace]
    background: "BackgroundTrafficModel"
    # Memoized access-trace IR (repro.replay); compiled on first use so
    # every configuration replayed against this workload shares it.
    compiled_trace: object | None = field(default=None, repr=False,
                                          compare=False)
    # The animation recipe that produced the frames (repro.anim), or
    # None for the suite's independently-reseeded frames.  Part of the
    # workload's identity: caches key compiled traces and results on it.
    anim: object | None = None

    @property
    def num_primitives(self) -> int:
        return len(self.scenes[0]) if self.scenes else 0

    def measured_reuse(self) -> float:
        return self.scenes[0].average_reuse()

    def measured_footprint_mib(self) -> float:
        return self.traces[0].pb.footprint_bytes() / MIB


def build_workload(spec: BenchmarkSpec, scale: float = 1.0, frames: int = 1,
                   screen: ScreenConfig | None = None,
                   order: TraversalOrder = TraversalOrder.Z_ORDER,
                   pbuffer: ParameterBufferConfig | None = None) -> Workload:
    """Instantiate a benchmark.

    ``scale`` shrinks the geometry (and the background traffic with it)
    for fast tests; 1.0 is paper scale.
    """
    from repro.workloads.background import BackgroundTrafficModel

    if scale <= 0:
        raise ValueError("scale must be positive")
    if frames <= 0:
        raise ValueError("need at least one frame")
    screen = screen or DEFAULT_GPU.screen
    num_primitives = max(16, round(spec.num_primitives(pbuffer) * scale))
    generator = SceneGenerator(screen, SceneParameters(
        num_primitives=num_primitives,
        target_reuse=spec.avg_reuse,
        mean_attributes=spec.mean_attributes,
        is_2d=spec.is_2d,
        coverage_fraction=spec.coverage_fraction,
        seed=spec.seed,
    ))
    scenes = [generator.generate(frame) for frame in range(frames)]
    traces = [TilingEngine(scene, order, pbuffer).trace() for scene in scenes]
    background = BackgroundTrafficModel(spec, screen, scale=scale)
    return Workload(spec=spec, screen=screen, scale=scale, scenes=scenes,
                    traces=traces, background=background)
