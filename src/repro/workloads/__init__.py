"""Workloads: trace records, the Table II benchmark suite, and the
background (non-Parameter-Buffer) traffic that shares the L2."""

from repro.workloads.trace import Access, Op, Region
from repro.workloads.suite import (
    BENCHMARKS,
    BENCHMARK_ORDER,
    BenchmarkSpec,
    Workload,
    build_workload,
)
from repro.workloads.background import BackgroundTrafficModel

__all__ = [
    "Access",
    "BackgroundTrafficModel",
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "BenchmarkSpec",
    "Op",
    "Region",
    "Workload",
    "build_workload",
]
