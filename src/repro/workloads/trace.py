"""Memory-access trace records.

The memory hierarchy is exercised by flat byte-addressed accesses tagged
with the memory region they belong to (Figure 5's memory organization).
Region tags drive both the per-region accounting of Figures 14-17 and
the TCOR L2 dead-line classification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Region(enum.IntEnum):
    """Memory regions of a graphics application (paper Figure 5)."""

    PB_LISTS = 0
    PB_ATTRIBUTES = 1
    TEXTURE = 2
    VERTEX = 3
    INSTRUCTION = 4
    FRAMEBUFFER = 5

    @property
    def is_parameter_buffer(self) -> bool:
        return self in (Region.PB_LISTS, Region.PB_ATTRIBUTES)


class Op(enum.IntEnum):
    READ = 0
    WRITE = 1


@dataclass(frozen=True, slots=True)
class Access:
    """One byte-addressed memory access."""

    op: Op
    region: Region
    address: int

    @property
    def is_write(self) -> bool:
        return self.op is Op.WRITE
