"""Background (non-Parameter-Buffer) memory traffic.

The L2 is shared by every L1 in the GPU (paper Figure 7): textures,
vertex data and shader instructions all contend with the Parameter
Buffer for L2 capacity, and the Color Buffer streams finished tiles
straight to main memory.  The paper runs the full TEAPOT pipeline; we
substitute a traffic model that reproduces the *pressure* each benchmark
puts on the shared L2:

- **Texture reads** (raster phase, per tile): the number of post-L1-miss
  accesses scales with the benchmark's texture footprint; addresses mix
  a tile-correlated streaming component (each screen region samples its
  own part of texture space) with a hot mip/atlas working set shared
  across tiles, which is what gives real texture streams their L2 reuse.
- **Instruction reads** (raster phase): a small, heavily reused footprint
  proportional to the shader length.
- **Vertex reads** (geometry phase, per primitive): a streaming walk over
  the vertex buffer with indexed-mesh reuse.
- **Color Buffer writes** (per finished tile): one main-memory write per
  line of the 32x32x4-byte tile, bypassing the L2.

All magnitudes scale with the workload's geometry ``scale`` so reduced
test runs keep every traffic ratio.
"""

from __future__ import annotations

import numpy as np

from repro.config import ScreenConfig
from repro.workloads.trace import Access, Op, Region

MIB = 1024 * 1024

TEXTURE_BASE = 0x4000_0000
VERTEX_BASE = 0x5000_0000
INSTRUCTION_BASE = 0x6000_0000
FRAMEBUFFER_BASE = 0x7000_0000

BLOCK = 64

# Fraction of texture reads that hit the shared hot set (mip tails, UI
# atlases) rather than the tile-local streaming region.
_HOT_FRACTION = 0.15
# Post-L1 texture accesses per frame per byte of texture footprint: a
# streaming pass plus some revisits.
_TEXTURE_STREAM_FACTOR = 2.5
# Bytes per vertex (position + a couple of varyings).
_VERTEX_BYTES = 32
# Indexed meshes touch each vertex ~2x but the vertex L1 absorbs the
# repeats; roughly one L2 access per primitive survives.
_VERTEX_L2_PER_PRIMITIVE = 1.0
# Lossless framebuffer compression (AFBC-style) shrinks Color Buffer
# flushes; mobile GPUs ship this generation of techniques alongside TBR.
_FRAMEBUFFER_COMPRESSION = 0.55


class BackgroundTrafficModel:
    """Per-benchmark generator of non-PB L2/main-memory accesses."""

    def __init__(self, spec, screen: ScreenConfig, scale: float = 1.0,
                 seed: int | None = None) -> None:
        self.spec = spec
        self.screen = screen
        self.scale = scale
        # Stateless generation: every tile/primitive derives its own RNG,
        # so baseline and TCOR replay byte-identical background traffic
        # and repeated simulations are deterministic.
        self._seed = spec.seed if seed is None else seed
        self.texture_bytes = max(BLOCK, int(spec.texture_mib * MIB * scale))
        self.instruction_bytes = max(
            BLOCK, spec.shader_insts_per_pixel * 64
        )
        total_texture_accesses = int(
            self.texture_bytes / BLOCK * _TEXTURE_STREAM_FACTOR
        )
        self.texture_accesses_per_tile = max(
            1, total_texture_accesses // screen.num_tiles
        )
        self.instruction_accesses_per_tile = max(
            1, round(spec.shader_insts_per_pixel / 4 * scale)
        )
        # Hot set: a few percent of the texture footprint.
        self.hot_bytes = max(BLOCK, self.texture_bytes // 16)

    # ------------------------------------------------------------------
    # Raster phase (per tile)
    # ------------------------------------------------------------------
    def tile_accesses(self, tile_id: int) -> list[Access]:
        """Texture + instruction L2 reads for rasterizing one tile."""
        rng = np.random.default_rng((self._seed, 1, tile_id))
        accesses: list[Access] = []
        tiles = self.screen.num_tiles
        # Tile-correlated streaming window into texture space.
        window_bytes = max(BLOCK, self.texture_bytes // tiles * 4)
        window_base = TEXTURE_BASE + (
            (tile_id * (self.texture_bytes // max(1, tiles)))
            % max(BLOCK, self.texture_bytes - window_bytes + BLOCK)
        )
        for _ in range(self.texture_accesses_per_tile):
            if rng.random() < _HOT_FRACTION:
                offset = int(rng.integers(0, self.hot_bytes // BLOCK))
                address = TEXTURE_BASE + offset * BLOCK
            else:
                offset = int(rng.integers(0, window_bytes // BLOCK))
                address = window_base + offset * BLOCK
            accesses.append(Access(Op.READ, Region.TEXTURE, address))
        for slot in range(self.instruction_accesses_per_tile):
            offset = (slot * BLOCK) % self.instruction_bytes
            accesses.append(Access(Op.READ, Region.INSTRUCTION,
                                   INSTRUCTION_BASE + offset))
        return accesses

    def framebuffer_writes_per_tile(self) -> int:
        """Color Buffer lines flushed to main memory per finished tile.

        Compressed (AFBC-style) and scaled with the workload so reduced
        test runs keep the Parameter Buffer's share of total traffic.
        Callers skip the flush entirely for tiles with no geometry
        (transaction elimination: an unchanged tile is never written).
        """
        tile_pixels = self.screen.tile_size * self.screen.tile_size
        return max(1, round(tile_pixels * 4 // BLOCK
                            * _FRAMEBUFFER_COMPRESSION * self.scale))

    # ------------------------------------------------------------------
    # Geometry phase (per primitive)
    # ------------------------------------------------------------------
    def primitive_accesses(self, primitive_id: int) -> list[Access]:
        """Vertex-fetch L2 reads while binning one primitive."""
        rng = np.random.default_rng((self._seed, 2, primitive_id))
        accesses: list[Access] = []
        expected = _VERTEX_L2_PER_PRIMITIVE
        count = int(expected) + (1 if rng.random() < expected % 1 else 0)
        for i in range(count):
            address = (VERTEX_BASE
                       + ((primitive_id * 3 + i) * _VERTEX_BYTES) // BLOCK * BLOCK)
            accesses.append(Access(Op.READ, Region.VERTEX, address))
        return accesses

    # ------------------------------------------------------------------
    # L1-level access estimates (energy accounting only)
    # ------------------------------------------------------------------
    def l1_access_estimates(self, num_primitives: int) -> dict[str, int]:
        """Accesses each non-Tile L1 absorbs per frame.

        These are identical for baseline and TCOR; they only enter the
        energy denominators.  Texture L1s see ~2 texel fetches per pixel;
        instruction caches one fetch per shader instruction per pixel;
        the vertex cache 3 vertices per primitive.
        """
        pixels = self.screen.width * self.screen.height
        return {
            "texture_l1": int(2 * pixels * self.scale),
            "instruction_l1": int(
                self.spec.shader_insts_per_pixel * pixels * self.scale
            ),
            "vertex_l1": 3 * num_primitives,
        }
