"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures and asserts
its *shape* (orderings and rough factors).  Simulations are memoized in
a session-scoped cache, and each experiment is timed with a single
pedantic round (re-running a multi-second suite simulation dozens of
times would measure nothing new).

Scale: set ``REPRO_BENCH_SCALE=1.0`` for paper-scale runs; the default
0.2 keeps the full harness in the minutes range.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import SimulationCache

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))


@pytest.fixture(scope="session")
def sim_cache() -> SimulationCache:
    return SimulationCache(scale=BENCH_SCALE)


def run_once(benchmark, function, *args, **kwargs):
    """Time one invocation of an experiment function."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
