"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures and asserts
its *shape* (orderings and rough factors).  Simulations are memoized in
a session-scoped cache, and each experiment is timed with a single
pedantic round (re-running a multi-second suite simulation dozens of
times would measure nothing new).

Scale: set ``REPRO_BENCH_SCALE=1.0`` for paper-scale runs; the default
0.2 keeps the full harness in the minutes range.

Knobs (environment):

- ``REPRO_BENCH_SCALE`` — geometry scale (default 0.2);
- ``REPRO_BENCH_JOBS``  — worker processes used to prefetch the whole
  simulation matrix before any benchmark runs (default 1: lazy/serial);
- ``REPRO_NO_DISK_CACHE=1`` — disable the persistent result store
  (``$REPRO_CACHE_DIR`` or ``.repro-cache/``).  With the store warm, a
  re-run times table construction only — by design: the cache is keyed
  on the simulator-code signature, so timings re-measure simulation
  exactly when the simulator changed.
"""

from __future__ import annotations

import os

import pytest

from repro import envvars
from repro.api import simulation_cache
from repro.experiments.common import SimulationProvider

BENCH_SCALE = float(os.environ.get(envvars.BENCH_SCALE, "0.2"))
BENCH_JOBS = int(os.environ.get(envvars.BENCH_JOBS, "1"))


@pytest.fixture(scope="session")
def sim_cache() -> SimulationProvider:
    cache = simulation_cache(
        BENCH_SCALE, jobs=BENCH_JOBS,
        disk=not os.environ.get(envvars.NO_DISK_CACHE))
    if BENCH_JOBS > 1:
        cache.prefetch()
    return cache


def run_once(benchmark, function, *args, **kwargs):
    """Time one invocation of an experiment function."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
