"""Figures 16/17: PB accesses to Main Memory vanish under TCOR."""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig16_17_mm_pb


def _check(result):
    average = result.row_for("average")[5]
    # Paper: 93.0% / 94.1% average decrease.
    assert average > 60.0
    # Small-PB benchmarks are eliminated outright.
    for alias in ("CCS", "SoD", "GTr", "RoK"):
        assert result.row_for(alias)[5] > 95.0, alias


def test_fig16_pb_mm_64k(benchmark, sim_cache):
    result = run_once(benchmark, fig16_17_mm_pb.run_one, "64KiB",
                      scale=BENCH_SCALE, cache=sim_cache)
    _check(result)


def test_fig17_pb_mm_128k(benchmark, sim_cache):
    result = run_once(benchmark, fig16_17_mm_pb.run_one, "128KiB",
                      scale=BENCH_SCALE, cache=sim_cache)
    _check(result)
