"""Cluster soak benchmark (PR 8): router + 3 shards under failure.

One sustained soak through the consistent-hash router: three real
``tcor-serve`` backend processes behind an in-process :class:`Router`,
2048 mixed hot/cold submissions, and one backend SIGKILLed mid-soak.
The gates are the cluster's serving contract:

- **zero lost jobs** — everything accepted completes; nothing fails,
  nothing hangs, despite the injected backend loss;
- **shard balance** — the hash ring spreads uniform keys within the
  max/min <= 1.5 tolerance at 3 shards (and the soak's *actual*
  per-shard forward counts ride along in ``extra_info``);
- **tier effectiveness** — the router's memo, memory tier and
  coalescing absorb the hot traffic; the memory-tier hit rate is
  exported.

The artifact (``BENCH_PR8.json``) carries requests/sec, shard balance
and tier hit rates alongside wall time.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.api import SimulationConfig
from repro.config import KIB
from repro.serve import InProcessServer, JobRequest
from repro.serve.cluster import Router, parse_backends
from repro.serve.ring import HashRing
from repro.serve.tiers import MemoryTier, TieredResultCache

# The soak measures the serving fabric, not the simulator: a small
# fixed geometry keeps the 64 distinct simulations in the seconds
# range while the request count stays in the thousands.
SOAK_SCALE = 0.05
SHARDS = ("shard0", "shard1", "shard2")
TOTAL_REQUESTS = 2048
KILL_AT = TOTAL_REQUESTS // 3
REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def spawn_backend(name: str, tmp: Path) -> tuple:
    port_file = tmp / f"{name}.port"
    env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
    # Own process group so the injected SIGKILL takes the worker-pool
    # children down too (inherited socket fds would otherwise keep the
    # router's in-flight reads open).
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--port-file", str(port_file), "--jobs", "2",
         "--no-disk-cache", "--name", name],
        stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT, env=env,
        start_new_session=True)
    return proc, port_file


def kill_group(proc: subprocess.Popen) -> None:
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass  # already gone
    proc.wait(timeout=30)


def await_ports(spawned: dict) -> dict:
    deadline = time.time() + 120
    ports = {}
    for name, (_, port_file) in spawned.items():
        while time.time() < deadline:
            if port_file.exists() and port_file.read_text().strip():
                ports[name] = int(port_file.read_text())
                break
            time.sleep(0.05)
    return ports


def soak_requests() -> tuple[list[JobRequest], list[JobRequest]]:
    """A hot set (8 keys, 75% of traffic) and a cold pool (64 keys)."""
    cold = [
        JobRequest(alias=alias, scale=SOAK_SCALE,
                   config=SimulationConfig(
                       tile_cache_bytes=(32 + 4 * step) * KIB))
        for alias in ("GTr", "CCS") for step in range(32)
    ]
    return cold[:8], cold


def test_cluster_soak_with_backend_kill(benchmark, tmp_path):
    hot, cold = soak_requests()
    spawned = {name: spawn_backend(name, tmp_path) for name in SHARDS}
    procs = {name: proc for name, (proc, _) in spawned.items()}

    def soak():
        ports = await_ports(spawned)
        assert len(ports) == len(SHARDS), "a backend failed to bind"
        # The router memo is squeezed below the 72 distinct keys on
        # purpose: hot repeats must fall through to the memory tier.
        router = Router(
            parse_backends([{"name": name,
                             "address": f"127.0.0.1:{ports[name]}"}
                            for name in SHARDS]),
            tier=TieredResultCache(memory=MemoryTier(8 << 20)),
            memo_limit=4, probe_interval_s=0.2, fail_threshold=1,
            retry_backoff_s=0.05, max_forward_attempts=6,
            forward_timeout_s=300.0)
        victim = SHARDS[-1]
        with InProcessServer(scheduler=router) as front:
            with front.client(timeout_s=300.0) as client:
                for index in range(TOTAL_REQUESTS):
                    if index == KILL_AT:
                        kill_group(procs[victim])
                    if index % 4 == 0:
                        client.submit(cold[(index // 4) % len(cold)])
                    else:
                        client.submit(hot[index % len(hot)])
                deadline = time.time() + 300
                while time.time() < deadline:
                    metrics = client.metrics()
                    settled = (metrics["serve.cluster.completed"]
                               + metrics.get("serve.cluster.failed", 0))
                    if settled >= metrics["serve.cluster.accepted"]:
                        break
                    time.sleep(0.1)
                # Warm re-read: the whole key set again, once settled.
                # The squeezed memo has evicted almost every finished
                # job, so these repeats fall through to the memory
                # tier and are answered without a single new forward.
                for request in cold:
                    client.submit(request)
                metrics = client.metrics()
        return metrics

    try:
        metrics = run_once(benchmark, soak)
    finally:
        for proc in procs.values():
            kill_group(proc)

    # Zero lost jobs: every accepted request completed, none failed.
    accepted = metrics["serve.cluster.accepted"]
    completed = metrics["serve.cluster.completed"]
    assert metrics["serve.cluster.active"] == 0
    assert metrics.get("serve.cluster.failed", 0) == 0
    assert completed == accepted
    assert metrics["serve.cluster.submitted"] \
        == TOTAL_REQUESTS + len(cold)
    assert metrics["serve.cluster.backend_down"] >= 1

    # The ISSUE's balance gate, on uniform keys at 3 shards.
    spread = HashRing(SHARDS).spread([f"key-{i}" for i in range(20000)])
    uniform_balance = max(spread.values()) / min(spread.values())
    assert uniform_balance <= 1.5

    # Tier effectiveness: the squeezed memo forces hot repeats through
    # the memory tier; coalescing absorbs in-flight duplicates.
    memory_hits = metrics["serve.cluster.tier.memory_hits"]
    misses = metrics["serve.cluster.tier.misses"]
    assert memory_hits > 0

    elapsed = benchmark.stats.stats.total
    benchmark.extra_info["requests"] = TOTAL_REQUESTS
    benchmark.extra_info["distinct_keys"] = len(cold)
    benchmark.extra_info["requests_per_sec"] = round(
        TOTAL_REQUESTS / elapsed, 1)
    benchmark.extra_info["lost_jobs"] = int(
        accepted - completed - metrics.get("serve.cluster.failed", 0))
    benchmark.extra_info["uniform_key_shard_balance"] = round(
        uniform_balance, 3)
    benchmark.extra_info["soak_shard_balance"] = metrics.get(
        "serve.cluster.shard_balance", 0.0)
    benchmark.extra_info["shard_forwarded"] = {
        name: metrics.get(f"serve.cluster.shard.{name}.forwarded", 0)
        for name in SHARDS}
    benchmark.extra_info["memory_tier_hit_rate"] = round(
        memory_hits / max(1, memory_hits + misses), 3)
    benchmark.extra_info["memo_hits"] = metrics[
        "serve.cluster.memo_hits"]
    benchmark.extra_info["coalesced"] = metrics[
        "serve.cluster.coalesced"]
    benchmark.extra_info["requeued_on_failure"] = metrics.get(
        "serve.cluster.requeued", 0)
    benchmark.extra_info["backends_killed"] = 1
