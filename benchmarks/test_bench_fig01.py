"""Figure 1: the introductory LRU-vs-OPT gap, fully associative L1."""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig01_intro_gap


def _scaled_sizes():
    return sorted({max(1, round(size * BENCH_SCALE))
                   for size in fig01_intro_gap.SIZES_KIB})


def test_fig01_lru_opt_gap(benchmark, sim_cache):
    result = run_once(benchmark, fig01_intro_gap.run,
                      scale=BENCH_SCALE, cache=sim_cache,
                      sizes_kib=_scaled_sizes())
    lru = result.column("lru_miss_ratio")
    opt = result.column("opt_miss_ratio")
    # Paper shape: OPT at or below LRU everywhere, both trending down,
    # and a visible gap in the mid range.
    assert all(o <= l + 1e-9 for l, o in zip(lru, opt))
    assert lru[-1] <= lru[0]
    assert opt[-1] <= opt[0]
    mid = len(lru) // 2
    assert opt[mid] < lru[0]
