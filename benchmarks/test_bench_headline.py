"""The abstract's headline numbers, plus the related-work lookahead gap.

Covers the paper's summary claims (Section I / Abstract) and the
Shepherd-Cache comparison from Section VI: bounded lookahead bridges
only part of the LRU-OPT gap, full future knowledge (TCOR) closes it.
"""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.analysis import attribute_access_trace
from repro.caches.fully_assoc import fully_associative_cache
from repro.caches.policies import BeladyOPT, LookaheadOPT, make_policy
from repro.experiments import headline


def test_headline_numbers(benchmark, sim_cache):
    result = run_once(benchmark, headline.run,
                      scale=BENCH_SCALE, cache=sim_cache)
    values = {row[0]: row[1] for row in result.rows}
    assert values["memory hierarchy energy decrease (%)"] > 2.0
    assert values["total GPU energy decrease (%)"] > 0.5
    assert values["FPS increase (%)"] > 0.5
    assert values["Tiling Engine speedup (x)"] > 1.5
    # Ordering: memhier saving > GPU saving > 0 (dilution by compute).
    assert values["memory hierarchy energy decrease (%)"] > \
        values["total GPU energy decrease (%)"]


def test_lookahead_gap_closure(benchmark, sim_cache):
    """Shepherd-style bounded lookahead lands strictly between LRU and
    OPT on the Parameter Buffer stream (paper Section VI cites 30-52%
    gap closure for the Shepherd Cache)."""
    def run():
        workload = sim_cache.workload("TRu")
        trace = attribute_access_trace(workload)
        capacity = max(8, len(set(trace)) // 4)

        def misses(policy):
            cache = fully_associative_cache(capacity * 64, 64, policy)
            for line in trace:
                cache.access(line * 64)
            return cache.stats.misses

        return {
            "lru": misses(make_policy("lru")),
            "lookahead": misses(LookaheadOPT.from_trace(trace, window=128)),
            "belady": misses(BeladyOPT.from_trace(trace)),
        }

    outcome = run_once(benchmark, run)
    assert outcome["belady"] <= outcome["lookahead"] <= outcome["lru"]
    gap = outcome["lru"] - outcome["belady"]
    if gap > 0:
        closure = (outcome["lru"] - outcome["lookahead"]) / gap
        assert 0.0 <= closure <= 1.0
