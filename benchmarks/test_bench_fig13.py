"""Figure 13: LRU / MRU / DRRIP / OPT in the 4-way L1."""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig13_policies


def _scaled_sizes():
    return sorted({max(1, round(size * BENCH_SCALE))
                   for size in fig13_policies.SIZES_KIB})


def test_fig13_policy_ordering(benchmark, sim_cache):
    result = run_once(benchmark, fig13_policies.run,
                      scale=BENCH_SCALE, cache=sim_cache,
                      sizes_kib=_scaled_sizes())
    for row in result.rows:
        entry = dict(zip(result.headers, row))
        # Paper shape: MRU highest; DRRIP shows no benefit over LRU on
        # this stream; OPT lowest, pinned to the bound.
        assert entry["opt"] <= entry["lru"] + 1e-9
        assert entry["lru"] <= entry["mru"] + 0.05
        assert entry["drrip_m2"] >= entry["lru"] - 0.03
        assert entry["lower_bound"] <= entry["opt"] + 1e-9
