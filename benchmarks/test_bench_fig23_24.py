"""Figures 23/24: Tile Fetcher primitives per cycle."""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig23_24_throughput


def _check(result):
    average = result.row_for("average")[3]
    # Paper: ~5x average speedup; qualitatively a multi-x win.
    assert average > 1.5
    for row in result.rows[:-1]:
        alias, base_ppc, tcor_ppc, speedup, _paper = row
        assert 0 < base_ppc <= 1.0
        assert 0 < tcor_ppc <= 1.0
        assert tcor_ppc > base_ppc, alias


def test_fig23_throughput_64k(benchmark, sim_cache):
    result = run_once(benchmark, fig23_24_throughput.run_one, "64KiB",
                      scale=BENCH_SCALE, cache=sim_cache)
    _check(result)


def test_fig24_throughput_128k(benchmark, sim_cache):
    result = run_once(benchmark, fig23_24_throughput.run_one, "128KiB",
                      scale=BENCH_SCALE, cache=sim_cache)
    _check(result)
