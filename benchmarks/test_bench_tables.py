"""Tables I and II."""

import pytest

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import tables


def test_table1_machine_description(benchmark):
    result = run_once(benchmark, tables.run_table1)
    assert result.row_for("screen")[1] == "1960x768"
    assert result.row_for("tile")[1].startswith("32x32")
    assert "1024KiB, 8-way" in result.row_for("l2 cache")[1]


def test_table2_benchmark_characteristics(benchmark, sim_cache):
    result = run_once(benchmark, tables.run_table2,
                      scale=BENCH_SCALE, cache=sim_cache)
    assert len(result.rows) == 10
    for row in result.rows:
        alias, *_rest = row
        published_reuse, measured_reuse = row[6], row[7]
        assert measured_reuse == pytest.approx(published_reuse, rel=0.3), alias
        published_fp, measured_fp = row[4], row[5]
        assert measured_fp == pytest.approx(published_fp, rel=0.35), alias
