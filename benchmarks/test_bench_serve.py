"""Serving-layer throughput and coalescing benchmarks (PR 5).

Two service-level measurements over a real in-process server (real
event loop, real process pool, real simulator):

- sustained throughput, as jobs/sec over a mixed queue of distinct
  requests (micro-batching and per-alias workload sharing are what's
  being measured — the batch of N distinct configs per alias costs one
  workload build, not N);
- the coalescing path: a duplicate-heavy burst, reporting the
  coalesce hit rate (duplicates absorbed without a pool slot).

Both attach their service metrics to the pytest-benchmark record
(``extra_info``), so the CI artifact (``BENCH_PR5.json``) carries
jobs/sec and the coalesce rate alongside wall time.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.api import SimulationConfig
from repro.config import KIB
from repro.serve import InProcessServer, JobRequest

SERVE_ALIASES = ("GTr", "CCS")
SIZES = (32 * KIB, 64 * KIB, 128 * KIB)


def test_serve_throughput_mixed_queue(benchmark):
    """Jobs/sec over 2 aliases x 3 sizes of distinct requests."""
    requests = [
        JobRequest(alias=alias, scale=BENCH_SCALE,
                   config=SimulationConfig(tile_cache_bytes=size))
        for alias in SERVE_ALIASES for size in SIZES
    ]

    def run():
        with InProcessServer(jobs=2, batch_window_s=0.05,
                             batch_max=8) as server:
            with server.client() as client:
                ids = [client.submit(request)["id"]
                       for request in requests]
                results = [client.wait(job_id, timeout_s=1800)
                           for job_id in ids]
                metrics = client.metrics()
        return results, metrics

    results, metrics = run_once(benchmark, run)
    assert all(result.ok for result in results)
    elapsed = benchmark.stats.stats.total
    benchmark.extra_info["jobs"] = len(requests)
    benchmark.extra_info["jobs_per_sec"] = round(
        len(requests) / elapsed, 3)
    benchmark.extra_info["batches"] = metrics["serve.batches"]
    # Micro-batching must group the per-alias work: never one batch
    # per job, at most one batch per (alias, scale) group per window.
    assert metrics["serve.batches"] <= len(requests)
    assert metrics["serve.batch_jobs"] == len(requests)


def test_serve_coalescing_duplicate_burst(benchmark):
    """A duplicate-heavy burst: 2 distinct requests, 12 submissions."""
    distinct = [
        JobRequest(alias="GTr", scale=BENCH_SCALE,
                   config=SimulationConfig(tile_cache_bytes=size))
        for size in (64 * KIB, 128 * KIB)
    ]
    burst = distinct * 6

    def run():
        with InProcessServer(jobs=2, batch_window_s=0.2) as server:
            with server.client() as client:
                ids = [client.submit(request)["id"] for request in burst]
                results = [client.wait(job_id, timeout_s=1800)
                           for job_id in set(ids)]
                metrics = client.metrics()
        return results, metrics

    results, metrics = run_once(benchmark, run)
    assert all(result.ok for result in results)
    coalesced = metrics["serve.coalesced"]
    accepted = metrics["serve.accepted"]
    rate = coalesced / metrics["serve.submitted"]
    benchmark.extra_info["submitted"] = metrics["serve.submitted"]
    benchmark.extra_info["coalesce_hit_rate"] = round(rate, 3)
    assert accepted == len(distinct)
    assert coalesced == len(burst) - len(distinct)
