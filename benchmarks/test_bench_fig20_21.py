"""Figures 20/21: memory-hierarchy energy, with and without the L2
enhancement."""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig20_21_energy


def _check(result):
    average_row = result.row_for("average")
    no_l2_avg, full_avg = average_row[4], average_row[5]
    # Paper: ~9% without the L2 enhancements, ~14% with.  Qualitatively:
    # both positive, and the full design strictly better.
    assert full_avg > 2.0
    assert full_avg > no_l2_avg
    for row in result.rows[:-1]:
        _alias, base, no_l2, tcor, *_rest = row
        assert tcor <= no_l2 <= base * 1.001


def test_fig20_energy_64k(benchmark, sim_cache):
    result = run_once(benchmark, fig20_21_energy.run_one, "64KiB",
                      scale=BENCH_SCALE, cache=sim_cache)
    _check(result)


def test_fig21_energy_128k(benchmark, sim_cache):
    result = run_once(benchmark, fig20_21_energy.run_one, "128KiB",
                      scale=BENCH_SCALE, cache=sim_cache)
    _check(result)
