"""Compiled-trace replay engine benchmarks (PR 7).

Three measurements behind ``BENCH_PR7.json``:

- trace-compile time: lowering one workload into the access-trace IR
  (the one-off cost a sweep amortizes over every configuration);
- replay throughput: accesses/sec through the TCOR replay kernel over
  a pre-compiled trace;
- the headline: the full Table II job matrix (every benchmark x
  baseline/TCOR/TCOR-without-L2-enhancements) run live versus
  compile-once-replay-many, asserting the wall-clock speedup the
  replay engine exists to deliver.

Each speedup leg re-simulates from scratch (no disk cache, no memoized
traces), so the numbers compare the two engines, not cache warmth.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.config import KIB, TCORConfig
from repro.replay import compile_workload, replay_baseline, replay_tcor
from repro.tcor import system
from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS, build_workload

TILE_CACHE_BYTES = 64 * KIB
# The honest bar from the issue: >=5x on the full matrix at the
# equivalence scale (0.2).  Tiny smoke scales pay the compile cost
# against much shorter live runs, so they get a reduced floor.
SPEEDUP_FLOOR = 5.0 if BENCH_SCALE >= 0.2 else 1.5


def _job_matrix():
    tcor_config = TCORConfig.for_total_size(TILE_CACHE_BYTES)
    for alias in BENCHMARK_ORDER:
        yield alias, "baseline", {"tile_cache_bytes": TILE_CACHE_BYTES}
        yield alias, "tcor", {"tcor": tcor_config}
        yield alias, "tcor", {"tcor": tcor_config,
                              "l2_enhancements": False}


def test_trace_compile_time(benchmark):
    """One workload lowered to the IR — the sweep's fixed cost."""
    workload = build_workload(BENCHMARKS["CCS"], scale=BENCH_SCALE)
    trace = run_once(benchmark, compile_workload, workload)
    elapsed = benchmark.stats.stats.total
    benchmark.extra_info["accesses"] = trace.num_accesses
    benchmark.extra_info["compile_s"] = round(elapsed, 4)
    assert trace.num_accesses > 0


def test_replay_throughput(benchmark):
    """Accesses/sec through the TCOR kernel on a compiled trace."""
    trace = compile_workload(
        build_workload(BENCHMARKS["CCS"], scale=BENCH_SCALE))
    tcor_config = TCORConfig.for_total_size(TILE_CACHE_BYTES)

    outcome = run_once(benchmark, replay_tcor, trace, tcor=tcor_config)
    elapsed = benchmark.stats.stats.total
    benchmark.extra_info["accesses"] = trace.num_accesses
    benchmark.extra_info["accesses_per_sec"] = round(
        trace.num_accesses / elapsed)
    assert outcome.result.l2_accesses > 0


def test_replay_vs_live_matrix_speedup(benchmark):
    """Full job matrix: live oracle vs compile-once + replay-per-config.

    The replayed leg is what the benchmark times (trace compiles
    included); the live leg is timed alongside and lands in
    ``extra_info`` with the resulting speedup, which must clear
    ``SPEEDUP_FLOOR``.  Workloads are built once up front for both
    legs — both engines consume a built workload (and the driver
    amortizes one build over every config of a batch regardless of
    engine), so including construction would just dilute the engine
    comparison with identical work.
    """
    jobs = list(_job_matrix())
    workloads = {alias: build_workload(BENCHMARKS[alias],
                                       scale=BENCH_SCALE)
                 for alias in BENCHMARK_ORDER}

    def live_leg():
        results = []
        for alias, kind, kwargs in jobs:
            workload = workloads[alias]
            if kind == "baseline":
                results.append(system.simulate_baseline(workload,
                                                        **kwargs))
            else:
                results.append(system.simulate_tcor(workload, **kwargs))
        return results

    def replay_leg():
        results = []
        traces = {}
        for alias, kind, kwargs in jobs:
            trace = traces.get(alias)
            if trace is None:
                trace = compile_workload(workloads[alias])
                traces[alias] = trace
            if kind == "baseline":
                results.append(replay_baseline(trace, **kwargs).result)
            else:
                results.append(replay_tcor(trace, **kwargs).result)
        return results

    start = time.perf_counter()
    live_results = live_leg()
    live_s = time.perf_counter() - start

    replay_results = run_once(benchmark, replay_leg)
    replay_s = benchmark.stats.stats.total
    speedup = live_s / replay_s

    benchmark.extra_info["jobs"] = len(jobs)
    benchmark.extra_info["scale"] = BENCH_SCALE
    benchmark.extra_info["live_s"] = round(live_s, 3)
    benchmark.extra_info["replay_s"] = round(replay_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    # Replay is only a speedup if it is also the same simulation.
    assert [r.l2_misses for r in live_results] == \
        [r.l2_misses for r in replay_results]
    assert speedup >= SPEEDUP_FLOOR, \
        f"replay speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x floor"
