"""Figure 11: OPT saturates the miss lower bound far before LRU."""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig11_lower_bound
from repro.experiments.fig11_lower_bound import saturation_size


def _scaled_sizes():
    return sorted({max(1, round(size * BENCH_SCALE))
                   for size in fig11_lower_bound.SIZES_KIB})


def test_fig11_saturation_advantage(benchmark, sim_cache):
    result = run_once(benchmark, fig11_lower_bound.run,
                      scale=BENCH_SCALE, cache=sim_cache,
                      sizes_kib=_scaled_sizes())
    sizes = result.column("size_kib")
    bound = result.column("lower_bound")
    lru = result.column("lru_miss_ratio")
    opt = result.column("opt_miss_ratio")
    # OPT never below the bound (it is a *bound*), never above LRU.
    for b, l, o in zip(bound, lru, opt):
        assert b <= o + 1e-9 <= l + 2e-2
    # The paper's headline: OPT reaches the bound at a much smaller size
    # (6.8x there; >=1.5x at any scale is the qualitative claim).
    opt_at = saturation_size(sizes, opt, bound, tolerance=0.01)
    lru_at = saturation_size(sizes, lru, bound, tolerance=0.01)
    assert opt_at is not None
    if lru_at is not None:
        assert lru_at >= 1.5 * opt_at
