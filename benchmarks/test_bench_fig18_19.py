"""Figures 18/19: total Main Memory accesses."""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig18_19_mm_total


def _check(result):
    average = result.row_for("average")[3]
    # Paper: 13.9% / 13.3% average decrease.
    assert average > 3.0
    # Texture-heavy RoK benefits least among the suite (paper Figure 18);
    # compare it against the geometry-heavy trio.
    rok = result.row_for("RoK")[3]
    for alias in ("CRa", "DDS", "Snp"):
        assert result.row_for(alias)[3] > rok, alias


def test_fig18_total_mm_64k(benchmark, sim_cache):
    result = run_once(benchmark, fig18_19_mm_total.run_one, "64KiB",
                      scale=BENCH_SCALE, cache=sim_cache)
    _check(result)


def test_fig19_total_mm_128k(benchmark, sim_cache):
    result = run_once(benchmark, fig18_19_mm_total.run_one, "128KiB",
                      scale=BENCH_SCALE, cache=sim_cache)
    _check(result)
