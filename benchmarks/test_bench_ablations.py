"""Ablations of TCOR's individual design choices (DESIGN.md section 5).

Each ablation disables exactly one mechanism and checks that it was
pulling its weight:

- OPT-number replacement vs LRU in the Attribute Cache (Section III-A);
- the interleaved PB-Lists layout (Section III-B);
- write bypass in the Attribute Cache (Section III-C.4);
- XOR indexing of the Primitive Buffer (Section III-C.2);
- the dead-line L2 policy (Section III-D).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.analysis import attribute_access_trace, policy_miss_ratio
from repro.config import TCORConfig
from repro.tcor.system import simulate_tcor

ABLATION_ALIASES = ("CCS", "TRu", "DDS")


def _suite(sim_cache):
    return [(alias, sim_cache.workload(alias)) for alias in ABLATION_ALIASES]


def test_ablation_opt_vs_lru_replacement(benchmark, sim_cache):
    """The OPT Number policy never misses more than LRU on the stream."""
    def run():
        gaps = {}
        for alias, workload in _suite(sim_cache):
            trace = attribute_access_trace(workload)
            capacity = max(8, len(set(trace)) // 3)
            lru = policy_miss_ratio(trace, capacity, "lru", associativity=4)
            opt = policy_miss_ratio(trace, capacity, "belady",
                                    associativity=4)
            gaps[alias] = (lru, opt)
        return gaps

    gaps = run_once(benchmark, run)
    for alias, (lru, opt) in gaps.items():
        assert opt <= lru + 1e-9, alias
    assert any(opt < lru * 0.98 for lru, opt in gaps.values())


def test_ablation_interleaved_layout(benchmark, sim_cache):
    """Contiguous PB-Lists costs extra L2 traffic even with the rest of
    TCOR in place."""
    def run():
        outcomes = {}
        for alias, workload in _suite(sim_cache):
            inter = simulate_tcor(workload)
            contig = simulate_tcor(workload, interleaved_lists=False)
            outcomes[alias] = (inter.pb_l2_accesses, contig.pb_l2_accesses)
        return outcomes

    outcomes = run_once(benchmark, run)
    for alias, (inter, contig) in outcomes.items():
        assert inter <= contig, alias
    assert any(inter < contig for inter, contig in outcomes.values())


def test_ablation_write_bypass(benchmark, sim_cache):
    """Disabling write bypass forces read-needed lines out on writes."""
    def run():
        outcomes = {}
        for alias, workload in _suite(sim_cache):
            with_bypass = simulate_tcor(workload)
            without = simulate_tcor(
                workload, tcor=TCORConfig(write_bypass=False))
            outcomes[alias] = (with_bypass, without)
        return outcomes

    outcomes = run_once(benchmark, run)
    for alias, (with_bypass, without) in outcomes.items():
        assert with_bypass.attr_read_hit_ratio >= \
            without.attr_read_hit_ratio - 0.02, alias
        assert without.write_bypasses == 0
    # Benchmarks whose PB outgrows the cache actually exercise the bypass
    # (small-PB benchmarks legitimately never need it).
    assert any(with_bypass.write_bypasses > 0
               for with_bypass, _ in outcomes.values())


def test_ablation_xor_indexing(benchmark, sim_cache):
    """Modulo indexing of the Primitive Buffer loses hits to conflicts."""
    def run():
        outcomes = {}
        for alias, workload in _suite(sim_cache):
            xor = simulate_tcor(workload)
            modulo = simulate_tcor(
                workload, tcor=TCORConfig(use_xor_indexing=False))
            outcomes[alias] = (xor.attr_read_hit_ratio,
                               modulo.attr_read_hit_ratio)
        return outcomes

    outcomes = run_once(benchmark, run)
    for alias, (xor, modulo) in outcomes.items():
        assert xor >= modulo - 0.03, alias


def test_ablation_dead_line_l2(benchmark, sim_cache):
    """Without the dead-line L2, PB main-memory traffic reappears."""
    def run():
        outcomes = {}
        for alias, workload in _suite(sim_cache):
            full = simulate_tcor(workload)
            no_l2 = simulate_tcor(workload, l2_enhancements=False)
            outcomes[alias] = (full.pb_mm_accesses, no_l2.pb_mm_accesses)
        return outcomes

    outcomes = run_once(benchmark, run)
    for alias, (full, no_l2) in outcomes.items():
        assert full <= no_l2, alias
    assert any(full < no_l2 for full, no_l2 in outcomes.values())
