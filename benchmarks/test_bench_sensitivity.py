"""Sensitivity sweeps (beyond the paper's figures)."""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import sensitivity


def test_traversal_order_robustness(benchmark, sim_cache):
    result = run_once(benchmark, sensitivity.run_traversal_orders,
                      scale=BENCH_SCALE, cache=sim_cache)
    decreases = result.column("pb_l2_decrease_%")
    # TCOR helps under every order, and the orders agree within a few
    # points (OPT Numbers adapt to whatever order is fixed).
    assert all(value > 0 for value in decreases)
    assert max(decreases) - min(decreases) < 15


def test_tile_cache_split(benchmark, sim_cache):
    result = run_once(benchmark, sensitivity.run_tile_cache_split,
                      scale=BENCH_SCALE, cache=sim_cache)
    hits = result.column("attr_hit_ratio")
    # Attribute hit ratio is monotone in the attribute budget (rows are
    # ordered by shrinking attribute share).
    assert all(a >= b - 0.02 for a, b in zip(hits, hits[1:]))


def test_l2_size_saturation(benchmark, sim_cache):
    result = run_once(benchmark, sensitivity.run_l2_size,
                      scale=BENCH_SCALE, cache=sim_cache)
    eliminations = result.column("elimination_%")
    # Larger L2s never hurt, and elimination saturates at 100%.
    assert all(b >= a - 5 for a, b in zip(eliminations, eliminations[1:]))
    assert eliminations[-1] >= 95.0
