"""Figure 22: decrease in total GPU energy."""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig22_gpu_energy, fig20_21_energy


def test_fig22_gpu_energy(benchmark, sim_cache):
    result = run_once(benchmark, fig22_gpu_energy.run,
                      scale=BENCH_SCALE, cache=sim_cache)
    averages = result.row_for("average")
    # Paper: 5.6% / 5.3%.  Positive at both sizes, and smaller than the
    # memory-hierarchy-only saving (compute energy dilutes it).
    assert averages[1] > 1.0
    assert averages[2] > 1.0
    memhier = fig20_21_energy.run_one("64KiB", scale=BENCH_SCALE,
                                      cache=sim_cache)
    assert averages[1] < memhier.row_for("average")[5]
