"""Figures 14/15: PB accesses to the L2, TCOR vs baseline."""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig14_15_l2_accesses


def _check(result):
    average = result.row_for("average")[5]
    # Paper: 33.5% / 37.1% average decrease; the qualitative bar is a
    # clearly positive suite-wide reduction.
    assert average > 5.0
    # High-reuse benchmarks (SoD, GTr) reduce more than low-reuse DDS.
    sod = result.row_for("SoD")[5]
    gtr = result.row_for("GTr")[5]
    dds = result.row_for("DDS")[5]
    assert sod > dds
    assert gtr > dds


def test_fig14_pb_l2_64k(benchmark, sim_cache):
    result = run_once(benchmark, fig14_15_l2_accesses.run_one, "64KiB",
                      scale=BENCH_SCALE, cache=sim_cache)
    _check(result)


def test_fig15_pb_l2_128k(benchmark, sim_cache):
    result = run_once(benchmark, fig14_15_l2_accesses.run_one, "128KiB",
                      scale=BENCH_SCALE, cache=sim_cache)
    _check(result)
