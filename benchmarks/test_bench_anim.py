"""Animated-workload + Rendering Elimination benchmarks (PR 10).

Three measurements behind ``BENCH_PR10.json``:

- the headline RE effect on a coherent camera path: fraction of tiles
  discarded and the main-memory / L2 traffic it saves (extra_info on
  the live run);
- multi-frame replay throughput: accesses/sec through the TCOR kernel
  over a compiled animated trace with RE enabled (the signature
  arrays ride in the IR, so the skip decisions replay for free);
- the ``fig_re`` sweep end to end, with its built-in placebo and
  conservation assertions.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.anim import AnimationSpec, build_animated_workload
from repro.experiments import fig_re
from repro.replay import compile_workload, replay_tcor
from repro.tcor import system
from repro.workloads.suite import BENCHMARKS

ANIM = AnimationSpec(frames=6, path="orbit", dwell=2, travel=2, seed=7)


def _animated(alias="SoD", anim=ANIM):
    return build_animated_workload(BENCHMARKS[alias], anim,
                                   scale=BENCH_SCALE)


def test_re_discard_and_traffic_saved(benchmark):
    """Live 6-frame orbit: tiles skipped and traffic saved by RE."""
    workload = _animated()
    off = system.simulate_tcor(workload)

    result = run_once(benchmark, system.simulate_tcor, workload,
                      rendering_elimination=True)
    skip_pct = 100.0 * result.tiles_skipped_fraction
    benchmark.extra_info["frames"] = ANIM.frames
    benchmark.extra_info["tiles_skipped_pct"] = round(skip_pct, 2)
    benchmark.extra_info["mm_traffic_saved_pct"] = round(
        100.0 * (1 - result.mm_accesses / off.mm_accesses), 2)
    benchmark.extra_info["l2_traffic_saved_pct"] = round(
        100.0 * (1 - result.l2_accesses / off.l2_accesses), 2)
    assert result.tiles_skipped > 0
    assert result.mm_accesses < off.mm_accesses


def test_multiframe_replay_throughput(benchmark):
    """Accesses/sec replaying an animated trace with RE enabled."""
    trace = compile_workload(_animated())

    outcome = run_once(benchmark, replay_tcor, trace,
                       rendering_elimination=True)
    elapsed = benchmark.stats.stats.total
    benchmark.extra_info["frames"] = ANIM.frames
    benchmark.extra_info["accesses"] = trace.num_accesses
    benchmark.extra_info["accesses_per_sec"] = round(
        trace.num_accesses / elapsed)
    benchmark.extra_info["tiles_skipped"] = outcome.result.tiles_skipped
    assert outcome.result.tiles_skipped > 0


def test_fig_re_sweep(benchmark):
    """The experiment family end to end (one benchmark, both
    policies); its placebo and conservation checks are hard asserts
    inside ``run``."""
    result = run_once(benchmark, fig_re.run, scale=BENCH_SCALE,
                      aliases=("SoD",))
    skip_col = result.headers.index("skip_%")
    benchmark.extra_info["rows"] = len(result.rows)
    benchmark.extra_info["max_skip_pct"] = max(
        row[skip_col] for row in result.rows)
    assert len(result.rows) == (len(fig_re.FRAME_COUNTS)
                                * len(fig_re.CHURN_PCTS)
                                * len(fig_re.POLICIES))
