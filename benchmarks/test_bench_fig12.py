"""Figure 12: associativity sweep for LRU and OPT."""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.experiments import fig12_associativity


def _scaled_sizes():
    return sorted({max(1, round(size * BENCH_SCALE))
                   for size in fig12_associativity.SIZES_KIB})


def test_fig12_associativity_collapse(benchmark, sim_cache):
    result = run_once(benchmark, fig12_associativity.run,
                      scale=BENCH_SCALE, cache=sim_cache,
                      sizes_kib=_scaled_sizes())
    mid = len(result.rows) // 2
    row = dict(zip(result.headers, result.rows[mid]))
    # Within each policy, more associativity never hurts much.
    assert row["lru_full"] <= row["lru_1way"] + 0.05
    assert row["belady_full"] <= row["belady_1way"] + 0.05
    # OPT at every associativity beats the matching LRU.
    for assoc in ("1way", "2way", "4way", "8way", "full"):
        assert row[f"belady_{assoc}"] <= row[f"lru_{assoc}"] + 1e-9
    # The paper's callout: 2-way OPT is about as good as fully
    # associative LRU.
    assert row["belady_2way"] <= row["lru_full"] + 0.03
    # And nothing dips below the bound.
    for assoc in ("1way", "2way", "4way", "8way", "full"):
        assert row["lower_bound"] <= row[f"belady_{assoc}"] + 1e-9
