"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``pip install -e .`` on older pips) use
the classic develop path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
