#!/usr/bin/env python3
"""Ground-truth texture traffic through real texture caches.

The system-level simulations abstract texture traffic to calibrated L2
pressure.  This study generates *real* texel traffic — rasterized
fragments, UV interpolation, mip selection, bilinear footprints — and
replays it through a 64 KiB, 4-way texture L1 (Table I), measuring the
miss behaviour the abstraction postulates: high L1 hit ratios, a
tile-local streaming component at the L2, and a shared mip-tail hot set.

Run:
    python examples/texture_cache_study.py
"""

from repro.caches.policies import make_policy
from repro.caches.set_assoc import SetAssociativeCache
from repro.config import DEFAULT_GPU, ScreenConfig
from repro.geometry import SceneGenerator, SceneParameters
from repro.geometry.traversal import TraversalOrder, tile_traversal
from repro.textures import MipmappedTexture, texel_trace_for_tile


def texture_l1() -> SetAssociativeCache:
    config = DEFAULT_GPU.texture_cache
    return SetAssociativeCache(config.num_sets, config.associativity,
                               config.line_bytes, make_policy("lru"),
                               name="texture_l1")


def main() -> None:
    screen = ScreenConfig(256, 256, 32)  # 8x8 tiles
    scene = SceneGenerator(screen, SceneParameters(
        num_primitives=120, target_reuse=2.5, seed=11)).generate()
    texture = MipmappedTexture(0x4000_0000, 1024, 1024)
    print(f"Scene: {len(scene)} triangles over {screen.num_tiles} tiles; "
          f"texture: 1024x1024 + mips = {texture.total_bytes // 1024} KiB\n")

    for label, texels_per_pixel in (("magnified (level 0)", 1.0),
                                    ("minified (mip tail)", 16.0)):
        cache = texture_l1()
        l2_stream: list[int] = []
        per_tile_blocks: list[set] = []
        for tile_id in tile_traversal(screen, TraversalOrder.Z_ORDER):
            trace = texel_trace_for_tile(
                scene, tile_id, texture,
                texels_per_pixel=texels_per_pixel)
            per_tile_blocks.append(set(trace))
            for address in trace:
                if not cache.access(address).hit:
                    l2_stream.append(address)
        stats = cache.stats
        non_empty = [blocks for blocks in per_tile_blocks if blocks]
        cross_tile = 0.0
        if len(non_empty) > 1:
            shared = set.intersection(*non_empty[:8]) \
                if len(non_empty) >= 8 else set()
            cross_tile = len(shared) / max(1, len(non_empty[0]))
        print(f"== {label} ==")
        print(f"  texture L1: {stats.accesses} accesses, "
              f"hit ratio {1 - stats.miss_ratio:.3f}")
        print(f"  L2-level texel reads: {len(l2_stream)} "
              f"({len(set(l2_stream))} distinct blocks)")
        print(f"  cross-tile shared blocks (first 8 tiles): "
              f"{100 * cross_tile:.0f}%\n")

    print("Reading: magnified sampling streams tile-local regions (low "
          "cross-tile sharing,\nmany distinct L2 blocks) while minified "
          "sampling collapses into a hot mip tail —\nthe two components "
          "the calibrated background model mixes.")


if __name__ == "__main__":
    main()
