#!/usr/bin/env python3
"""A microscopic walk through the Tiling Engine and the OPT mechanism.

Recreates the spirit of the paper's worked example (Figures 9/10) on a
3x3-tile screen with three primitives, printing every PMD the Polygon
List Builder writes (with its OPT Number) and every read the Tile
Fetcher issues — then replays the stream through a two-primitive
Attribute Cache to show the bypass/eviction decisions the paper walks
through.

Run:
    python examples/tiling_engine_walkthrough.py
"""

from repro.config import CacheConfig, ScreenConfig, TCORConfig
from repro.geometry.primitives import Primitive, Vertex
from repro.geometry.scene import Scene
from repro.geometry.traversal import TraversalOrder
from repro.pbuffer.pmd import NO_NEXT_TILE
from repro.tcor.attribute_cache import AttributeCache
from repro.tiling import AttributeRead, AttributeWrite, PmdWrite, TilingEngine

SCREEN = ScreenConfig(96, 96, 32)  # 3x3 tiles, scanline IDs 0..8

# Three primitives chosen so each tile is overlapped by exactly one:
# blue spans the top row's left tiles, yellow the top-right corner,
# pink the bottom two rows.
PRIMITIVES = [
    # One attribute each so the 2-entry Attribute Buffer means "room for
    # two primitives", exactly like the paper's example.
    Primitive(0, Vertex(2, 2), Vertex(60, 2), Vertex(2, 30),
              num_attributes=1),                                   # blue
    Primitive(1, Vertex(70, 2), Vertex(94, 2), Vertex(94, 30),
              num_attributes=1),                                   # yellow
    Primitive(2, Vertex(2, 40), Vertex(94, 40), Vertex(48, 94),
              num_attributes=1),                                   # pink
]
NAMES = {0: "blue", 1: "yellow", 2: "pink"}


def opt_str(opt_number: int) -> str:
    return "-" if opt_number == NO_NEXT_TILE else str(opt_number)


def main() -> None:
    engine = TilingEngine(Scene(SCREEN, PRIMITIVES),
                          TraversalOrder.SCANLINE)
    trace = engine.trace()

    print("=== Phase 1: Polygon List Builder (binning) ===")
    for event in trace.build_events:
        if isinstance(event, PmdWrite):
            print(f"  append PMD to tile {event.tile_id}: "
                  f"prim {NAMES[event.pmd.primitive_id]}, "
                  f"OPT Number -> next tile {opt_str(event.pmd.opt_number)}")
        elif isinstance(event, AttributeWrite):
            print(f"  write attributes of {NAMES[event.primitive_id]} "
                  f"(first use: tile {event.opt_number}, "
                  f"dead after tile {event.last_use_rank})")

    print("\n=== Phase 2: Tile Fetcher through a 2-primitive cache ===")
    config = TCORConfig(
        primitive_list_cache=CacheConfig("pl", 1024),
        attribute_buffer_bytes=2 * 48,
        primitive_buffer_associativity=2,
        use_xor_indexing=False,
    )
    cache = AttributeCache(config, trace.pb.attributes, inflight_window=1)
    for record in trace.pb.records:
        outcome = cache.write(record.primitive_id, record.num_attributes,
                              record.first_use_rank, record.last_use_rank)
        verdict = "BYPASS to L2" if outcome.bypassed else "cached"
        print(f"  PLB write {NAMES[record.primitive_id]:6} -> {verdict}")

    for event in trace.fetch_events:
        if not isinstance(event, AttributeRead):
            continue
        outcome = cache.read(event.primitive_id, event.num_attributes,
                             event.opt_number, event.last_use_rank)
        cache.drain_inflight()
        fills = sum(1 for r in outcome.l2_requests if not r.is_write)
        writes = sum(1 for r in outcome.l2_requests if r.is_write)
        verdict = "hit" if outcome.hit else \
            f"MISS ({fills} L2 read(s), {writes} writeback(s))"
        print(f"  tile {event.tile_rank}: read "
              f"{NAMES[event.primitive_id]:6} -> {verdict}")

    stats = cache.stats
    print(f"\nAttribute Cache: {stats.reads} reads, "
          f"{stats.read_hits} hits, {stats.write_bypasses} write bypass(es)"
          f" — the OPT Number made every decision above.")


if __name__ == "__main__":
    main()
