#!/usr/bin/env python3
"""Serving-layer quickstart — and the CI smoke test for ``tcor-serve``.

Launches the real ``tcor-serve`` CLI as a subprocess, then walks the
whole service surface the way a downstream user would:

1. submit a simulation and block for the typed result;
2. fire a burst of duplicate submissions and watch them coalesce onto
   one in-flight simulation (``serve.coalesced`` on ``/metrics``);
3. scrape ``/metrics`` over HTTP and parse the Prometheus text;
4. send SIGTERM and verify the server drains and exits 0.

Run:
    python examples/serve_quickstart.py
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.api import SimulationConfig
from repro.config import KIB
from repro.obs import parse_prometheus_text
from repro.serve import JobRequest, ServeClient

SCALE = 0.1


def launch(port_file: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--port-file", str(port_file), "--jobs", "2",
         "--batch-window", "0.2", "--no-disk-cache"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


def await_port(port_file: Path, timeout_s: float = 60.0) -> int:
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text())
        time.sleep(0.05)
    raise RuntimeError("server did not bind a port in time")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        port_file = Path(tmp) / "port"
        server = launch(port_file)
        try:
            port = await_port(port_file)
            print(f"server is up on port {port}")

            # 1. One simulation, submitted and awaited in one call.
            request = JobRequest(
                alias="GTr", scale=SCALE,
                config=SimulationConfig(kind="tcor"))
            with ServeClient(port=port) as client:
                result = client.run(request, timeout_s=600)
                print(f"GTr tcor: state={result.state} "
                      f"lane={result.lane} ok={result.ok} "
                      f"mm_reads={result.result.mm_reads}")
                assert result.ok

                # 2. A duplicate burst: every submission lands on the
                # same job; only one simulation runs.
                dup = JobRequest(
                    alias="CCS", scale=SCALE,
                    config=SimulationConfig(tile_cache_bytes=64 * KIB))
                ids = {client.submit(dup)["id"] for _ in range(5)}
                assert len(ids) == 1, "duplicates did not share a job"
                burst = client.wait(ids.pop(), timeout_s=600)
                assert burst.ok
                metrics = client.metrics()
                print(f"burst of 5 -> coalesced="
                      f"{metrics['serve.coalesced']:.0f} "
                      f"accepted={metrics['serve.accepted']:.0f}")
                assert metrics["serve.coalesced"] == 4

            # 3. The Prometheus surface, over plain HTTP.
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics") as resp:
                scraped = parse_prometheus_text(resp.read().decode())
            print(f"/metrics: serve.completed="
                  f"{scraped['serve.completed']:.0f} "
                  f"serve.batches={scraped['serve.batches']:.0f}")
            assert scraped["serve.completed"] >= 2
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz") as resp:
                health = json.load(resp)
            assert health["ok"] and not health["draining"]

            # 4. Graceful shutdown: SIGTERM drains and exits 0.
            server.send_signal(signal.SIGTERM)
            output, _ = server.communicate(timeout=600)
            print("-- server log " + "-" * 40)
            print(output.strip())
            assert server.returncode == 0, "drain did not exit cleanly"
            print("server drained and exited 0")
        finally:
            if server.poll() is None:
                server.kill()
                server.communicate()
    print("serve quickstart: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
