#!/usr/bin/env python3
"""Tiling Engine throughput sensitivity (the paper's future-work angle).

The paper argues TCOR's faster Tiling Engine "opens the door to a more
aggressive Raster Pipeline".  This example quantifies the headroom: it
sweeps the MSHR file size and the memory latency and reports primitives
per cycle for both organizations — showing that the baseline is
miss-bound (more MSHRs barely help) while TCOR converges on the
1-primitive/cycle ceiling.

Run:
    python examples/throughput_sensitivity.py [alias] [scale]
"""

import sys
from dataclasses import replace

from repro.config import DEFAULT_GPU
from repro.timing import tile_fetcher_throughput
from repro.workloads import BENCHMARKS, build_workload


def main() -> None:
    alias = sys.argv[1] if len(sys.argv) > 1 else "TRu"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2
    workload = build_workload(BENCHMARKS[alias], scale=scale)
    print(f"{alias} at scale {scale}: "
          f"{workload.traces[0].num_primitive_reads} primitive reads\n")

    print("== MSHR sweep (memory latency 50-100 cycles) ==")
    print(f"{'mshrs':>6} {'baseline ppc':>13} {'tcor ppc':>9} {'speedup':>8}")
    for entries in (2, 4, 8, 16, 32, 64):
        gpu = replace(DEFAULT_GPU,
                      tiling=replace(DEFAULT_GPU.tiling,
                                     mshr_entries=entries))
        base = tile_fetcher_throughput(workload, "baseline", gpu=gpu)
        tcor = tile_fetcher_throughput(workload, "tcor", gpu=gpu)
        print(f"{entries:>6} {base.primitives_per_cycle:>13.3f} "
              f"{tcor.primitives_per_cycle:>9.3f} "
              f"{tcor.primitives_per_cycle / max(1e-9, base.primitives_per_cycle):>7.1f}x")

    print("\n== Memory latency sweep (16 MSHRs) ==")
    print(f"{'latency':>8} {'baseline ppc':>13} {'tcor ppc':>9} {'speedup':>8}")
    for latency in (30, 60, 100, 160, 240):
        gpu = replace(DEFAULT_GPU,
                      memory=replace(DEFAULT_GPU.memory,
                                     min_latency_cycles=latency,
                                     max_latency_cycles=latency))
        base = tile_fetcher_throughput(workload, "baseline", gpu=gpu)
        tcor = tile_fetcher_throughput(workload, "tcor", gpu=gpu)
        print(f"{latency:>8} {base.primitives_per_cycle:>13.3f} "
              f"{tcor.primitives_per_cycle:>9.3f} "
              f"{tcor.primitives_per_cycle / max(1e-9, base.primitives_per_cycle):>7.1f}x")

    print("\nReading: the baseline's curve is flat in MSHRs (it is "
          "miss-bound at the L2/DRAM),\nwhile TCOR needs only a handful of "
          "MSHRs to track its few remaining misses.")


if __name__ == "__main__":
    main()
