#!/usr/bin/env python3
"""Cluster quickstart — and the CI smoke test for ``tcor-serve-router``.

Launches a real two-shard cluster the way an operator would — two
``tcor-serve`` workers plus the router CLI reading a ``backends.json``
membership file — then drives it the way a downstream user would,
through :func:`repro.api.connect`:

1. run baseline and TCOR simulations through the
   :class:`~repro.serve.handle.ServeHandle` provider and report the
   speedup, exactly like the local quickstart;
2. SIGKILL one backend mid-service and verify the next request still
   completes on the survivor (the router drains and requeues);
3. scrape the router's ``/metrics`` and ``/healthz`` over HTTP and
   check the ``serve.cluster.*`` surface reflects the failover;
4. SIGTERM the router and verify it drains and exits 0.

Run:
    python examples/cluster_quickstart.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import repro.api as api
from repro.obs import parse_prometheus_text

SCALE = 0.1
WORKERS = ("alpha", "beta")


def launch_worker(name: str, tmp: Path) -> tuple:
    port_file = tmp / f"{name}.port"
    # Each worker in its own process group: the forced SIGKILL below
    # must take its simulation pool down with it, like a dying machine.
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--port-file", str(port_file), "--jobs", "2",
         "--no-disk-cache", "--name", name],
        stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
        start_new_session=True)
    return proc, port_file


def launch_router(backends_file: Path, tmp: Path) -> tuple:
    port_file = tmp / "router.port"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--router",
         str(backends_file), "--port", "0", "--port-file",
         str(port_file), "--no-disk-cache", "--probe-interval", "0.2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc, port_file


def await_port(port_file: Path, timeout_s: float = 60.0) -> int:
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text())
        time.sleep(0.05)
    raise RuntimeError(f"{port_file.name}: no port bound in time")


def kill_group(proc: subprocess.Popen) -> None:
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass  # already gone
    proc.wait(timeout=30)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        workers = {name: launch_worker(name, tmp) for name in WORKERS}
        router = None
        try:
            ports = {name: await_port(port_file)
                     for name, (_, port_file) in workers.items()}
            backends_file = tmp / "backends.json"
            backends_file.write_text(json.dumps({"backends": [
                {"name": name, "address": f"127.0.0.1:{port}"}
                for name, port in sorted(ports.items())]}))
            router, router_port_file = launch_router(backends_file, tmp)
            port = await_port(router_port_file)
            print(f"router is up on port {port}, "
                  f"shards: {sorted(ports)}")

            # 1. The cluster as a simulation provider.
            with api.connect(f"127.0.0.1:{port}", scale=SCALE) as handle:
                baseline = handle.baseline("GTr", 64 * 1024)
                tcor = handle.tcor("GTr", 64 * 1024)
                factor = (baseline.pb_l2_accesses
                          / max(1, tcor.pb_l2_accesses))
                print(f"GTr @ 64KiB: PB->L2 accesses baseline="
                      f"{baseline.pb_l2_accesses} tcor="
                      f"{tcor.pb_l2_accesses} ({factor:.2f}x fewer)")
                assert tcor.pb_l2_accesses < baseline.pb_l2_accesses

                # 2. Forced backend loss mid-service: the next request
                # must complete on the survivor.
                kill_group(workers["beta"][0])
                print("killed shard 'beta'; serving must continue")
                survivor_run = handle.tcor("CCS", 64 * 1024)
                assert survivor_run.pb_l2_accesses > 0
                print(f"CCS @ 64KiB after failover: PB->L2 accesses="
                      f"{survivor_run.pb_l2_accesses}")

            # 3. The cluster observability surface, over plain HTTP.
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics") as resp:
                scraped = parse_prometheus_text(resp.read().decode())
            print(f"/metrics: completed="
                  f"{scraped['serve.cluster.completed']:.0f} "
                  f"forwarded={scraped['serve.cluster.forwarded']:.0f} "
                  f"backends_up="
                  f"{scraped['serve.cluster.backends_up']:.0f}")
            assert scraped["serve.cluster.completed"] >= 3
            assert scraped["serve.cluster.failed"] == 0
            deadline = time.time() + 30
            while time.time() < deadline:
                with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/healthz") as resp:
                    health = json.load(resp)
                if health["backends_up"] == 1:
                    break
                time.sleep(0.2)
            assert health["ok"] and health["role"] == "router"
            assert health["backends_up"] == 1, health["backends"]

            # 4. Graceful shutdown: SIGTERM drains and exits 0.
            router.send_signal(signal.SIGTERM)
            output, _ = router.communicate(timeout=120)
            print("-- router log " + "-" * 40)
            print(output.strip())
            assert router.returncode == 0, "drain did not exit cleanly"
            print("router drained and exited 0")
        finally:
            if router is not None and router.poll() is None:
                router.kill()
                router.communicate()
            for proc, _ in workers.values():
                kill_group(proc)
    print("cluster quickstart: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
