#!/usr/bin/env python3
"""Animated-workload quickstart — and the CI smoke test for
``repro.anim``.

Walks the whole animation story the way a downstream user would:

1. build a deterministic multi-frame orbit over a Table II scene;
2. simulate it with Rendering Elimination off and on, and show the
   tiles discarded and the main-memory traffic saved;
3. cross-check the compiled-trace replay engine against the live
   simulator — bit-identical counters, RE on AND off;
4. show the placebo: 100% object churn changes every tile's content
   signature, so nothing is ever discarded;
5. stream the sequence through an in-process server and watch the
   scheduler's memoization warm up frame by frame.

Run:
    python examples/animation_quickstart.py
"""

from __future__ import annotations

import dataclasses
import sys

from repro.anim import AnimationSpec, build_animated_workload
from repro.api import SimulationConfig, simulate
from repro.energy import gpu_energy
from repro.serve import InProcessServer
from repro.workloads.suite import BENCHMARKS

ALIAS = "SoD"
SCALE = 0.1
ANIM = AnimationSpec(frames=6, path="orbit", dwell=2, travel=2, seed=7)


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"  ok: {message}")


def main() -> int:
    print(f"== 1. a {ANIM.frames}-frame orbit over {ALIAS} "
          f"(scale {SCALE}) ==")
    workload = build_animated_workload(BENCHMARKS[ALIAS], ANIM,
                                       scale=SCALE)
    print(f"  {len(workload.traces)} frames, "
          f"{workload.num_primitives} primitives per frame")

    print("== 2. Rendering Elimination: off vs on ==")
    off = simulate(workload, SimulationConfig(kind="tcor"))
    on = simulate(workload, SimulationConfig(
        kind="tcor", rendering_elimination=True))
    skipped = on.result.tiles_skipped
    total = on.result.tiles_total
    mm_saved = 100.0 * (1 - on.result.mm_accesses
                        / off.result.mm_accesses)
    energy_off = gpu_energy(off.result, workload)
    energy_on = gpu_energy(on.result, workload)
    energy_saved = 100.0 * (1 - energy_on.total_gpu_nj
                            / energy_off.total_gpu_nj)
    print(f"  tiles discarded: {skipped}/{total} "
          f"({100.0 * skipped / total:.1f}%)")
    print(f"  main-memory accesses saved: {mm_saved:.1f}%")
    print(f"  GPU energy saved: {energy_saved:.1f}%")
    check(skipped > 0, "a coherent orbit discards tiles")
    check(mm_saved > 0, "discarded tiles save main-memory traffic")

    print("== 3. replay engine cross-check (live == replay) ==")
    for re_on in (False, True):
        config = SimulationConfig(kind="tcor",
                                  rendering_elimination=re_on)
        live = simulate(workload, config, engine="live")
        replayed = simulate(workload, config, engine="replay")
        same = all(
            getattr(live.result, field.name)
            == getattr(replayed.result, field.name)
            for field in dataclasses.fields(type(live.result)))
        check(same and dict(live.metrics) == dict(replayed.metrics),
              f"replay is bit-identical to live (RE {'on' if re_on else 'off'})")

    print("== 4. the placebo: 100% churn discards nothing ==")
    churned = build_animated_workload(
        BENCHMARKS[ALIAS],
        dataclasses.replace(ANIM, churn=1.0), scale=SCALE)
    placebo = simulate(churned, SimulationConfig(
        kind="tcor", rendering_elimination=True))
    print(f"  signature compares: {placebo.result.signature_compares}, "
          f"tiles discarded: {placebo.result.tiles_skipped}")
    check(placebo.result.tiles_skipped == 0,
          "fully-churned frames never match")

    print("== 5. streaming the sequence through a server ==")
    with InProcessServer(jobs=2, batch_window_s=0.02) as server:
        with server.client() as client:
            results = client.run_sequence(
                ALIAS, ANIM, scale=SCALE,
                config=SimulationConfig(kind="tcor",
                                        rendering_elimination=True))
            metrics = client.metrics()
    print(f"  {len(results)} frames served, "
          f"serve.memo_hits={metrics.get('serve.memo_hits', 0)}, "
          f"serve.sequence_frames="
          f"{metrics.get('serve.sequence_frames', 0)}")
    check(len(results) == ANIM.frames, "one result per frame")
    check(metrics.get("serve.memo_hits", 0) >= ANIM.frames - 1,
          "every frame after the first warms on the previous prefix")
    check(results[-1].result.tiles_skipped > 0,
          "the served stream discards tiles too")

    print("all animation smoke checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
