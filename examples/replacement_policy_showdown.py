#!/usr/bin/env python3
"""Replacement-policy showdown on the Parameter Buffer stream.

Recreates the paper's Figures 1/13 story interactively: sweeps cache
size for LRU, MRU, FIFO, DRRIP and offline Belady OPT on one benchmark's
PB-Attributes access stream, prints the curves next to the theoretical
lower bound, and draws a small ASCII chart.

Run:
    python examples/replacement_policy_showdown.py [alias] [scale]
"""

import sys

from repro.analysis import (
    attribute_access_trace,
    lower_bound_ratio,
    policy_miss_ratio,
    primitives_capacity,
)
from repro.workloads import BENCHMARKS, build_workload

PAPER_SIZES_KIB = [8, 16, 32, 48, 64, 96, 128]
POLICIES = ["mru", "fifo", "drrip", "lru", "belady"]


def ascii_bar(value: float, width: int = 40) -> str:
    filled = int(round(value * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    alias = sys.argv[1] if len(sys.argv) > 1 else "SoD"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    workload = build_workload(BENCHMARKS[alias], scale=scale)
    trace = attribute_access_trace(workload)
    mean_attrs = workload.scenes[0].average_attributes()
    total_primitives = len(set(trace))
    # Shrink the paper's size grid with the geometry, so the curves show
    # the same capacity-vs-footprint story at any scale.
    sizes_kib = sorted({max(1, round(size * scale))
                        for size in PAPER_SIZES_KIB})
    print(f"{alias}: {total_primitives} primitives, "
          f"{len(trace)} attribute-cache accesses "
          f"(sizes scaled by {scale})\n")

    header = "size   " + "".join(f"{name:>9}" for name in POLICIES) \
        + f"{'bound':>9}"
    print(header)
    print("-" * len(header))
    curves = {}
    for size in sizes_kib:
        capacity = primitives_capacity(size * 1024, mean_attrs)
        row = [f"{size:3d}KiB"]
        for name in POLICIES:
            ratio = policy_miss_ratio(trace, capacity, name, associativity=4)
            curves.setdefault(name, []).append(ratio)
            row.append(f"{ratio:9.3f}")
        bound = lower_bound_ratio(total_primitives, capacity, len(trace))
        curves.setdefault("bound", []).append(bound)
        row.append(f"{bound:9.3f}")
        print("".join(row))

    anchor = sizes_kib[len(sizes_kib) * 2 // 3]
    print(f"\nMiss-ratio profile at {anchor} KiB (4-way):")
    index = sizes_kib.index(anchor)
    for name in POLICIES + ["bound"]:
        value = curves[name][index]
        print(f"  {name:>7} {value:.3f} |{ascii_bar(value)}|")

    opt = curves["belady"][index]
    lru = curves["lru"][index]
    print(f"\nLRU-OPT gap at {anchor} KiB: {100 * (lru - opt) / lru:.1f}% "
          "of LRU's misses are avoidable — the gap TCOR closes in hardware.")


if __name__ == "__main__":
    main()
