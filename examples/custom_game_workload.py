#!/usr/bin/env python3
"""Evaluate TCOR on your own game profile.

Shows the intended downstream use of the library: describe a game by the
characteristics a GPU vendor can measure (Parameter Buffer footprint,
average primitive reuse, texture footprint, shader length), synthesize a
matching workload, and ask whether TCOR's split Tile Cache would pay off
— including the ablation the paper calls "TCOR without L2 Enhancements".

Run:
    python examples/custom_game_workload.py
"""

from repro.api import SimulationConfig, simulate
from repro.energy import gpu_energy
from repro.workloads import BenchmarkSpec, build_workload

# An imaginary mid-weight 3D action game.
MY_GAME = BenchmarkSpec(
    alias="MyG",
    name="My Imaginary Game",
    installs_millions=1,
    genre="Action",
    is_2d=False,
    pb_footprint_mib=0.45,        # moderate geometry
    avg_reuse=3.2,                # primitives span ~3 tiles each
    texture_mib=1.4,
    shader_insts_per_pixel=11,
    coverage_fraction=0.5,        # geometry concentrated mid-screen
    seed=2024,
)

CONFIGS = [
    ("baseline (unified 64 KiB LRU)", SimulationConfig(kind="baseline")),
    ("TCOR w/o L2 enhancements",
     SimulationConfig(kind="tcor", l2_enhancements=False)),
    ("TCOR (full)", SimulationConfig(kind="tcor", l2_enhancements=True)),
]


def main() -> None:
    workload = build_workload(MY_GAME, scale=0.25)
    print(f"Synthesized {workload.num_primitives} primitives; "
          f"measured reuse {workload.measured_reuse():.2f} "
          f"(target {MY_GAME.avg_reuse})\n")

    results = []
    for label, config in CONFIGS:
        result = simulate(workload, config).result
        energy = gpu_energy(result, workload)
        results.append((label, result, energy))

    base = results[0]
    print(f"{'configuration':<32} {'PB->L2':>8} {'PB->DRAM':>9} "
          f"{'DRAM':>8} {'mem mJ':>8} {'GPU mJ':>8}")
    for label, result, energy in results:
        print(f"{label:<32} {result.pb_l2_accesses:8d} "
              f"{result.pb_mm_accesses:9d} {result.mm_accesses:8d} "
              f"{energy.memory_hierarchy_nj / 1e6:8.3f} "
              f"{energy.total_gpu_nj / 1e6:8.3f}")

    _, base_result, base_energy = base
    _, tcor_result, tcor_energy = results[-1]
    saving = 1 - tcor_energy.memory_hierarchy_nj / base_energy.memory_hierarchy_nj
    print(f"\nVerdict: TCOR cuts this game's memory-hierarchy energy by "
          f"{100 * saving:.1f}% and its Parameter Buffer DRAM traffic by "
          f"{100 * (1 - tcor_result.pb_mm_accesses / max(1, base_result.pb_mm_accesses)):.1f}%.")


if __name__ == "__main__":
    main()
