#!/usr/bin/env python3
"""Quickstart: baseline vs TCOR on one benchmark.

Builds a reduced-scale Candy Crush Saga workload, replays its frame
through both memory organizations and prints the paper's headline
metrics: Parameter Buffer traffic to the L2 and to main memory, total
main-memory traffic, memory-hierarchy energy, and Tiling Engine
throughput.

Run:
    python examples/quickstart.py [scale]
"""

import sys

from repro.api import SimulationConfig, simulate
from repro.energy import gpu_energy
from repro.timing import tile_fetcher_throughput
from repro.workloads import BENCHMARKS, build_workload


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    spec = BENCHMARKS["CCS"]
    print(f"Building {spec.name} at scale {scale} ...")
    workload = build_workload(spec, scale=scale)
    print(f"  {workload.num_primitives} primitives, "
          f"measured reuse {workload.measured_reuse():.2f} "
          f"(published: {spec.avg_reuse})")

    base_run = simulate(workload, SimulationConfig(kind="baseline"))
    tcor_run = simulate(workload, SimulationConfig(kind="tcor"))
    assert base_run.ok and tcor_run.ok, "conservation invariants violated"
    baseline, tcor = base_run.result, tcor_run.result

    def decrease(before: float, after: float) -> str:
        return f"{100 * (1 - after / max(1, before)):5.1f}% lower"

    print("\n--- Traffic (one frame) -----------------------------------")
    print(f"PB accesses to L2   : baseline {baseline.pb_l2_accesses:7d}  "
          f"TCOR {tcor.pb_l2_accesses:7d}  "
          f"({decrease(baseline.pb_l2_accesses, tcor.pb_l2_accesses)})")
    print(f"PB accesses to DRAM : baseline {baseline.pb_mm_accesses:7d}  "
          f"TCOR {tcor.pb_mm_accesses:7d}  "
          f"({decrease(baseline.pb_mm_accesses, tcor.pb_mm_accesses)})")
    print(f"Total DRAM accesses : baseline {baseline.mm_accesses:7d}  "
          f"TCOR {tcor.mm_accesses:7d}  "
          f"({decrease(baseline.mm_accesses, tcor.mm_accesses)})")
    print(f"Attribute Cache read hit ratio (TCOR): "
          f"{tcor.attr_read_hit_ratio:.3f}")

    print("\n--- Energy -------------------------------------------------")
    base_energy = gpu_energy(baseline, workload)
    tcor_energy = gpu_energy(tcor, workload)
    print(f"Memory hierarchy    : baseline {base_energy.memory_hierarchy_nj / 1e6:7.3f} mJ  "
          f"TCOR {tcor_energy.memory_hierarchy_nj / 1e6:7.3f} mJ  "
          f"({decrease(base_energy.memory_hierarchy_nj, tcor_energy.memory_hierarchy_nj)})")
    print(f"Total GPU           : baseline {base_energy.total_gpu_nj / 1e6:7.3f} mJ  "
          f"TCOR {tcor_energy.total_gpu_nj / 1e6:7.3f} mJ  "
          f"({decrease(base_energy.total_gpu_nj, tcor_energy.total_gpu_nj)})")

    print("\n--- Tiling Engine throughput --------------------------------")
    base_ppc = tile_fetcher_throughput(workload, "baseline")
    tcor_ppc = tile_fetcher_throughput(workload, "tcor")
    speedup = (tcor_ppc.primitives_per_cycle
               / max(1e-9, base_ppc.primitives_per_cycle))
    print(f"Primitives/cycle    : baseline {base_ppc.primitives_per_cycle:.3f}  "
          f"TCOR {tcor_ppc.primitives_per_cycle:.3f}  ({speedup:.1f}x)")


if __name__ == "__main__":
    main()
