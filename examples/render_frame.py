#!/usr/bin/env python3
"""Render a synthetic frame end to end and write it as a PPM image.

Exercises the entire front-to-back path the paper's Figure 2 draws:
scene generation -> binning into the Parameter Buffer (with OPT Numbers)
-> tile-sequential rasterization with early-Z and blending -> Frame
Buffer.  Alongside the image it prints the raster statistics and the
Tiling Engine's view of the same frame.

Run:
    python examples/render_frame.py [out.ppm]
"""

import sys

import numpy as np

from repro.config import ScreenConfig
from repro.geometry import SceneGenerator, SceneParameters
from repro.pbuffer.builder import build_parameter_buffer
from repro.raster.pipeline import RasterPipeline
from repro.tiling import TilingEngine


def write_ppm(path: str, image: np.ndarray) -> None:
    height, width = image.shape[:2]
    rgb = (np.clip(image[:, :, :3], 0, 1) * 255).astype(np.uint8)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode())
        handle.write(rgb.tobytes())


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "frame.ppm"
    screen = ScreenConfig(width=640, height=384, tile_size=32)
    params = SceneParameters(num_primitives=400, target_reuse=3.0,
                             coverage_fraction=0.85, seed=99)
    scene = SceneGenerator(screen, params).generate()
    print(f"Scene: {len(scene)} triangles, "
          f"mean reuse {scene.average_reuse():.2f}")

    pb = build_parameter_buffer(scene)
    engine_trace = TilingEngine(scene).trace()
    print(f"Parameter Buffer: {pb.total_pmds()} PMDs, "
          f"{pb.footprint_bytes() / 1024:.1f} KiB, "
          f"{engine_trace.num_primitive_reads} Tile Fetcher reads")

    pipeline = RasterPipeline(pb)
    image = pipeline.render()
    stats = pipeline.stats
    print(f"Raster: {stats.quads_rasterized} quads, "
          f"{stats.fragments_shaded} fragments shaded, "
          f"early-Z killed {100 * stats.early_z_kill_ratio:.1f}% of quads, "
          f"{stats.framebuffer_flushes}/{stats.tiles_rendered} tiles flushed")

    write_ppm(out_path, image)
    covered = float(np.mean(image[:, :, 3] > 0))
    print(f"Wrote {out_path} ({screen.width}x{screen.height}, "
          f"{100 * covered:.1f}% of pixels covered)")


if __name__ == "__main__":
    main()
