#!/usr/bin/env python3
"""The full Graphics Pipeline on a real mesh: cube in, pixels out.

Walks the paper's Figure 2 left to right on an indexed cube mesh:
Vertex Stage (MVP transform) -> Primitive Assembly (with backface and
near-plane culling, and a post-transform vertex cache) -> Polygon List
Builder (binning + OPT Numbers) -> Tile Fetcher order -> Raster Pipeline
-> Frame Buffer, written as a PPM.

Run:
    python examples/mesh_to_screen.py [out.ppm]
"""

import math
import sys

import numpy as np

from repro.config import ScreenConfig
from repro.geometry.assembly import IndexedMesh, PrimitiveAssembly
from repro.geometry.scene import Scene
from repro.geometry.transform import (
    VertexTransform,
    look_at,
    perspective,
    rotation_y,
)
from repro.pbuffer.builder import build_parameter_buffer
from repro.raster.pipeline import RasterPipeline


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "cube.ppm"
    screen = ScreenConfig(width=512, height=256, tile_size=32)
    mvp = (perspective(math.radians(50), screen.width / screen.height,
                       0.1, 100.0)
           @ look_at((1.6, 1.2, 2.4), (0, 0, 0))
           @ rotation_y(math.radians(20)))
    transform = VertexTransform(mvp, screen)

    assembly = PrimitiveAssembly(transform, backface_culling=True)
    primitives = assembly.assemble(IndexedMesh.cube(size=1.4))
    stats = assembly.stats
    print(f"Geometry Pipeline: {stats.triangles_in} triangles in, "
          f"{len(primitives)} emitted "
          f"({stats.culled_backface} backfaces culled), "
          f"vertex cache hit ratio {stats.vertex_cache_hit_ratio:.2f}")

    scene = Scene(screen, primitives)
    pb = build_parameter_buffer(scene)
    occupied = sum(1 for lst in pb.tile_lists if lst)
    print(f"Tiling Engine: {pb.total_pmds()} PMDs over "
          f"{occupied}/{screen.num_tiles} tiles, "
          f"footprint {pb.footprint_bytes()} bytes")

    pipeline = RasterPipeline(pb)
    image = pipeline.render()
    print(f"Raster Pipeline: {pipeline.stats.fragments_shaded} fragments, "
          f"early-Z killed {100 * pipeline.stats.early_z_kill_ratio:.1f}% "
          "of quads")

    rgb = (np.clip(image[:, :, :3], 0, 1) * 255).astype(np.uint8)
    with open(out_path, "wb") as handle:
        handle.write(f"P6\n{screen.width} {screen.height}\n255\n".encode())
        handle.write(rgb.tobytes())
    print(f"Wrote {out_path}")


if __name__ == "__main__":
    main()
