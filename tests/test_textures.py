"""Texture storage, sampling and traffic shape."""

import pytest

from repro.config import ScreenConfig
from repro.geometry.primitives import Primitive, Vertex
from repro.geometry.scene import Scene
from repro.textures import (
    MipmappedTexture,
    TextureLayout,
    TextureSampler,
    texel_trace_for_tile,
)
from repro.textures.texture import BLOCK_BYTES


class TestLayout:
    def test_block_linear_addressing(self):
        layout = TextureLayout(base=0x1000, width=16, height=16)
        assert layout.blocks_x == 4
        assert layout.texel_address(0, 0) == 0x1000
        assert layout.texel_address(3, 3) == 0x1000        # same 4x4 block
        assert layout.texel_address(4, 0) == 0x1000 + 64   # next block
        assert layout.texel_address(0, 4) == 0x1000 + 4 * 64

    def test_bounds(self):
        layout = TextureLayout(base=0, width=8, height=8)
        with pytest.raises(ValueError):
            layout.texel_address(8, 0)


class TestMipPyramid:
    def test_levels_down_to_1x1(self):
        texture = MipmappedTexture(0, 64, 32)
        assert texture.num_levels == 7  # 64x32 ... 1x1
        assert texture.levels[-1].width == texture.levels[-1].height == 1

    def test_levels_are_contiguous_and_disjoint(self):
        texture = MipmappedTexture(0x100, 32, 32)
        for previous, current in zip(texture.levels, texture.levels[1:]):
            assert current.base == previous.base + previous.size_bytes

    def test_pyramid_size_about_4_thirds(self):
        texture = MipmappedTexture(0, 256, 256)
        base = texture.levels[0].size_bytes
        assert base < texture.total_bytes < base * 1.4

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            MipmappedTexture(0, 100, 64)

    def test_lod_selection(self):
        texture = MipmappedTexture(0, 64, 64)
        assert texture.level_for_footprint(1.0) == 0
        assert texture.level_for_footprint(2.0) == 1
        assert texture.level_for_footprint(4.9) == 2
        assert texture.level_for_footprint(1e9) == texture.num_levels - 1


class TestSampler:
    def test_bilinear_footprint_small(self):
        sampler = TextureSampler(MipmappedTexture(0, 64, 64))
        footprint = sampler.sample(0.5, 0.5)
        # Four taps land in at most 4 blocks, often fewer (block-linear).
        assert 1 <= len(footprint.addresses) <= 4

    def test_block_locality_of_block_linear(self):
        """Most interior samples touch a single 4x4 block — the point of
        the layout."""
        sampler = TextureSampler(MipmappedTexture(0, 256, 256))
        for i in range(200):
            sampler.sample((i * 0.0037) % 1.0, (i * 0.0071) % 1.0)
        assert sampler.blocks_per_sample < 2.5

    def test_wrap_addressing(self):
        sampler = TextureSampler(MipmappedTexture(0, 64, 64))
        wrapped = sampler.sample(1.25, -0.75)
        direct = sampler.sample(0.25, 0.25)
        assert wrapped.addresses == direct.addresses

    def test_lod_moves_to_smaller_level(self):
        texture = MipmappedTexture(0, 64, 64)
        sampler = TextureSampler(texture)
        fine = sampler.sample(0.3, 0.3, texels_per_pixel=1.0)
        coarse = sampler.sample(0.3, 0.3, texels_per_pixel=8.0)
        assert coarse.level > fine.level
        assert min(coarse.addresses) >= texture.level(coarse.level).base


class TestTrafficShape:
    @pytest.fixture(scope="class")
    def scene(self):
        screen = ScreenConfig(128, 64, 32)
        prims = [
            Primitive(0, Vertex(2, 2), Vertex(126, 2), Vertex(2, 62)),
            Primitive(1, Vertex(126, 62), Vertex(126, 2), Vertex(2, 62)),
        ]
        return Scene(screen, prims)

    def test_adjacent_tiles_sample_adjacent_texture(self, scene):
        """The background model's 'tile-correlated window' assumption:
        neighbouring tiles share few blocks, but their address ranges
        abut."""
        texture = MipmappedTexture(0, 512, 512)
        t0 = set(texel_trace_for_tile(scene, 0, texture))
        t1 = set(texel_trace_for_tile(scene, 1, texture))
        assert t0 and t1
        overlap = len(t0 & t1) / min(len(t0), len(t1))
        assert overlap < 0.5  # mostly disjoint streaming windows

    def test_coarse_lod_collapses_to_hot_set(self, scene):
        """The background model's 'hot mip tail' assumption: minified
        sampling funnels every tile into a small shared set of blocks."""
        texture = MipmappedTexture(0, 512, 512)
        t0 = set(texel_trace_for_tile(scene, 0, texture,
                                      texels_per_pixel=64.0))
        t2 = set(texel_trace_for_tile(scene, 2, texture,
                                      texels_per_pixel=64.0))
        assert t0 and t2
        overlap = len(t0 & t2) / min(len(t0), len(t2))
        assert overlap > 0.5  # shared mip-tail working set

    def test_traffic_volume_tracks_coverage(self, scene):
        texture = MipmappedTexture(0, 512, 512)
        trace = texel_trace_for_tile(scene, 0, texture)
        # ~32x32 covered fragments; each bilinear sample touches 1-4
        # distinct blocks (block-linear keeps most to 1-2).
        fragments = 32 * 32
        assert fragments * 0.8 <= len(trace) <= fragments * 4
