"""The repro.api facade."""

import dataclasses

import pytest

import repro
from repro.api import Report, RunResult, SimulationConfig, simulate
from repro.workloads.suite import BENCHMARKS, build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(BENCHMARKS["CCS"], scale=0.06)


class TestSimulationConfig:
    def test_frozen(self):
        config = SimulationConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.kind = "baseline"

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SimulationConfig(kind="lru")

    def test_hashable_and_reusable(self):
        assert SimulationConfig() == SimulationConfig(kind="tcor")
        assert hash(SimulationConfig()) == hash(SimulationConfig())


class TestSimulate:
    def test_matches_direct_simulator_calls(self, workload):
        from repro.tcor.system import simulate_baseline, simulate_tcor

        base = simulate(workload, SimulationConfig(kind="baseline"))
        tcor = simulate(workload)
        assert base.result == simulate_baseline(workload)
        assert tcor.result == simulate_tcor(workload)

    def test_run_result_carries_metrics_and_invariants(self, workload):
        run = simulate(workload)
        assert isinstance(run, RunResult)
        assert run.ok and run.invariant_failures == ()
        assert run.metrics["live.system.pb_l2_reads"] \
            == run.result.pb_l2_reads
        assert run.config.kind == "tcor"

    def test_config_knobs_reach_simulator(self, workload):
        full = simulate(workload).result
        ablated = simulate(
            workload, SimulationConfig(l2_enhancements=False)).result
        assert ablated.dead_writebacks_avoided == 0
        assert full.mm_accesses <= ablated.mm_accesses

    def test_shared_observation_accumulates(self, workload):
        from repro.obs import Observation

        obs = repro.simulate(workload).metrics
        shared = Observation()
        simulate(workload, obs=shared)
        simulate(workload, obs=shared)
        assert shared.snapshot()["live.l2.accesses"] \
            == 2 * obs["live.l2.accesses"]

    def test_facade_exported_from_package_root(self):
        assert repro.simulate is simulate
        assert repro.SimulationConfig is SimulationConfig
        for name in ("Report", "RunResult", "run_experiment",
                     "simulation_cache"):
            assert name in repro.__all__


class TestRunExperiment:
    def test_fig10_report(self):
        report = repro.run_experiment("fig10", scale=0.2)
        assert isinstance(report, Report)
        assert report.table("fig10").rows
        assert "fig10" in str(report)
        with pytest.raises(KeyError):
            report.table("fig99")

    def test_alias_resolves_and_metrics_populate(self):
        report = repro.run_experiment("fig15", scale=0.05,
                                      benchmarks=("CCS",))
        assert report.tables[0].exp_id.startswith("fig")
        assert any(name.startswith("sim.") for name in report.metrics)
        assert any(name.startswith("table.") for name in report.metrics)


class TestConnectExport:
    def test_connect_is_exported(self):
        from repro.api import connect

        assert callable(connect)
        assert "connect" in repro.api.__all__
