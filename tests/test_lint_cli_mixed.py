"""Mixed-family CLI runs: SIM0xx + SIM1xx + SIM2xx in one invocation.

One ``repro-lint --semantic`` run covers all three rule families;
these tests pin what that means operationally — one exit code, one
SARIF document, one baseline file, and byte-identical output across a
warm fact-cache rerun (the CI contract).
"""

from __future__ import annotations

import json
from textwrap import dedent

from repro.lint import lint_paths
from repro.lint.cli import main
from repro.lint.reporters import sarif_payload

# One violation per family, in three separate modules.
RNG_MODULE = """
    import random

    PICK = random.randint(0, 3)
"""
POOL_MODULE = """
    from concurrent.futures import ProcessPoolExecutor

    STATE = 0

    def worker(n):
        global STATE
        STATE += n
        return n

    def fan_out(jobs):
        with ProcessPoolExecutor() as pool:
            return [pool.submit(worker, job) for job in jobs]
"""
ASYNC_MODULE = """
    import time

    async def handler(payload):
        time.sleep(0.1)
        return payload
"""
CLEAN_MODULE = """
    def double(value):
        return value * 2
"""


def write_project(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(source))
    return tmp_path


def mixed_project(tmp_path):
    return write_project(tmp_path, {
        "src/rng.py": RNG_MODULE,
        "src/pool.py": POOL_MODULE,
        "src/srv.py": ASYNC_MODULE,
    })


class TestExitCodes:
    def test_mixed_findings_exit_one_and_name_every_family(
            self, tmp_path, capsys):
        root = mixed_project(tmp_path)
        status = main(["--no-cache", "--semantic", str(root / "src")])
        out = capsys.readouterr().out
        assert status == 1
        for code in ("SIM001", "SIM101", "SIM201"):
            assert code in out

    def test_clean_tree_exits_zero_with_all_families_on(
            self, tmp_path, capsys):
        root = write_project(tmp_path, {"src/ok.py": CLEAN_MODULE})
        status = main(["--no-cache", "--semantic", str(root / "src")])
        capsys.readouterr()
        assert status == 0

    def test_selecting_one_family_scopes_the_exit_decision(
            self, tmp_path, capsys):
        root = mixed_project(tmp_path)
        status = main(["--no-cache", "--semantic", "--select", "SIM201",
                       str(root / "src")])
        out = capsys.readouterr().out
        assert status == 1
        assert "SIM201" in out
        assert "SIM001" not in out and "SIM101" not in out

    def test_concurrency_codes_are_ignorable(self, tmp_path, capsys):
        root = write_project(tmp_path, {"src/srv.py": ASYNC_MODULE})
        status = main(["--no-cache", "--semantic", "--ignore", "SIM201",
                       str(root / "src")])
        capsys.readouterr()
        assert status == 0


class TestExplain:
    def test_explain_prints_the_full_rule_documentation(self, capsys):
        # One rule per family; lower-case codes are normalised.
        for code, fragment in (("sim001", "RNG"),
                               ("SIM104", "whole-program symbol table"),
                               ("SIM202", "suspension"),
                               ("SIM301", "footprint")):
            status = main(["--explain", code])
            out = capsys.readouterr().out
            assert status == 0
            assert out.startswith(code.upper() + " (")
            assert fragment.lower() in out.lower()

    def test_explain_rejects_unknown_codes(self, capsys):
        import pytest
        with pytest.raises(SystemExit) as excinfo:
            main(["--explain", "SIM999"])
        assert excinfo.value.code == 2
        assert "unknown rule code" in capsys.readouterr().err


class TestSingleSarif:
    def test_one_document_carries_all_three_families(
            self, tmp_path, capsys):
        root = mixed_project(tmp_path)
        status = main(["--no-cache", "--semantic", "--format", "sarif",
                       str(root / "src")])
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        (run,) = payload["runs"]  # one run for the whole mixed pass
        hit_rules = {entry["ruleId"] for entry in run["results"]}
        assert {"SIM001", "SIM101", "SIM201"} <= hit_rules
        # The driver catalogue is namespaced per family and has no
        # duplicate ids.
        ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert len(ids) == len(set(ids))
        assert {"SIM001", "SIM101", "SIM201", "SIM202", "SIM203",
                "SIM204", "SIM205", "SIM206"} <= set(ids)

    def test_results_point_into_the_right_files(self, tmp_path):
        root = mixed_project(tmp_path)
        result = lint_paths([str(root / "src")], root=root,
                            use_cache=False, semantic=True)
        payload = sarif_payload(result)
        uri_of = {entry["ruleId"]:
                  entry["locations"][0]["physicalLocation"]
                  ["artifactLocation"]["uri"]
                  for entry in payload["runs"][0]["results"]}
        assert uri_of["SIM001"].endswith("rng.py")
        assert uri_of["SIM101"].endswith("pool.py")
        assert uri_of["SIM201"].endswith("srv.py")


class TestSingleBaseline:
    def test_one_baseline_file_accepts_all_families(
            self, tmp_path, capsys):
        root = mixed_project(tmp_path)
        baseline = root / ".lint-baseline.json"
        status = main(["--no-cache", "--semantic", "--update-baseline",
                       str(baseline), str(root / "src")])
        capsys.readouterr()
        assert status == 0
        recorded = json.loads(baseline.read_text())
        families = {finding["rule"][:4]
                    for finding in recorded["findings"]}
        assert families == {"SIM0", "SIM1", "SIM2"}

        # The baselined mixed run passes; a fresh SIM2xx finding fails.
        status = main(["--no-cache", "--semantic", "--baseline",
                       str(baseline), str(root / "src")])
        capsys.readouterr()
        assert status == 0
        (root / "src/fresh.py").write_text(dedent("""
            import asyncio

            async def kick(coro):
                asyncio.create_task(coro)
        """))
        status = main(["--no-cache", "--semantic", "--baseline",
                       str(baseline), str(root / "src")])
        out = capsys.readouterr().out
        assert status == 1
        assert "SIM203" in out
        assert "srv.py" not in out  # the baselined finding stays quiet


class TestWarmRerunStability:
    def test_sarif_is_byte_stable_across_a_warm_fact_cache_rerun(
            self, tmp_path):
        root = mixed_project(tmp_path)
        cold = lint_paths([str(root / "src")], root=root, semantic=True)
        warm = lint_paths([str(root / "src")], root=root, semantic=True)
        # The warm run really replayed the two-tier cache...
        assert warm.semantic_facts_from_cache == 3
        assert warm.semantic_facts_computed == 0
        assert warm.semantic_findings_from_cache == 3
        # ...and the reports are byte-identical, SARIF included.
        assert [v.format() for v in warm.violations] \
            == [v.format() for v in cold.violations]
        assert json.dumps(sarif_payload(warm), sort_keys=True) \
            == json.dumps(sarif_payload(cold), sort_keys=True)
