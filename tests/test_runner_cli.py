"""The experiment CLI end to end (subprocess)."""

import subprocess
import sys

import pytest


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *args],
        capture_output=True, text=True, timeout=600,
    )


def test_table1_runs_fast():
    result = run_cli("--experiment", "table1")
    assert result.returncode == 0
    assert "1960x768" in result.stdout


def test_requires_a_selection():
    result = run_cli()
    assert result.returncode != 0
    assert "--all or --experiment" in result.stderr


def test_subset_with_benchmark_filter(tmp_path):
    output = tmp_path / "report.txt"
    result = run_cli("--experiment", "fig16", "--scale", "0.06",
                     "--benchmarks", "GTr", "--output", str(output))
    assert result.returncode == 0
    assert "fig16" in result.stdout and "fig17" in result.stdout
    assert output.read_text().startswith("== fig16")


def test_unknown_experiment_fails_cleanly():
    result = run_cli("--experiment", "fig99")
    assert result.returncode != 0
