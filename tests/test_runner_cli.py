"""The experiment CLI end to end (subprocess)."""

import subprocess
import sys

import pytest


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.driver", *args],
        capture_output=True, text=True, timeout=600,
    )


def test_table1_runs_fast():
    result = run_cli("--experiment", "table1")
    assert result.returncode == 0
    assert "1960x768" in result.stdout


def test_requires_a_selection():
    result = run_cli()
    assert result.returncode != 0
    assert "--all or --experiment" in result.stderr


def test_subset_with_benchmark_filter(tmp_path):
    output = tmp_path / "report.txt"
    result = run_cli("--experiment", "fig16", "--scale", "0.06",
                     "--benchmarks", "GTr", "--output", str(output))
    assert result.returncode == 0
    assert "fig16" in result.stdout and "fig17" in result.stdout
    assert output.read_text().startswith("== fig16")


def test_unknown_experiment_fails_cleanly():
    result = run_cli("--experiment", "fig99")
    assert result.returncode != 0


def run_cli_env(*args: str, env: dict | None = None) -> subprocess.CompletedProcess:
    import os

    merged = dict(os.environ)
    merged.update(env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.driver", *args],
        capture_output=True, text=True, timeout=600, env=merged,
    )


def tables_only(stdout: str) -> str:
    """The report minus the timing footer (which legitimately varies)."""
    return stdout.rsplit("\n\n[", 1)[0]


def test_jobs_flag_and_disk_cache_round_trip(tmp_path):
    env = {"REPRO_CACHE_DIR": str(tmp_path / "cache")}
    args = ("--experiment", "fig14", "--scale", "0.05",
            "--benchmarks", "GTr", "--jobs", "2")
    cold = run_cli_env(*args, env=env)
    assert cold.returncode == 0
    assert "0 hits" in cold.stdout
    warm = run_cli_env(*args, env=env)
    assert warm.returncode == 0
    assert "0 misses" in warm.stdout
    assert tables_only(cold.stdout) == tables_only(warm.stdout)
    serial = run_cli_env("--experiment", "fig14", "--scale", "0.05",
                         "--benchmarks", "GTr", "--jobs", "1",
                         "--no-disk-cache")
    assert tables_only(serial.stdout) == tables_only(cold.stdout)


def test_no_disk_cache_writes_nothing(tmp_path):
    env = {"REPRO_CACHE_DIR": str(tmp_path / "cache")}
    result = run_cli_env("--experiment", "fig14", "--scale", "0.05",
                         "--benchmarks", "GTr", "--no-disk-cache", env=env)
    assert result.returncode == 0
    assert not (tmp_path / "cache").exists()
