"""The TCOR Attribute Cache: OPT replacement, write bypass, locking."""

import pytest

from repro.config import CacheConfig, TCORConfig
from repro.pbuffer.attributes import PBAttributesMap
from repro.pbuffer.pmd import NO_NEXT_TILE
from repro.tcor.attribute_cache import AttributeCache
from repro.workloads.trace import Region

KIB = 1024


def tiny_config(entries: int = 8, ways: int = 4,
                write_bypass: bool = True) -> TCORConfig:
    """An attribute buffer with ``entries`` 48-byte slots and a primitive
    buffer of entries/2 lines."""
    return TCORConfig(
        primitive_list_cache=CacheConfig("pl", 1 * KIB),
        attribute_buffer_bytes=entries * 48,
        primitive_buffer_associativity=ways,
        use_xor_indexing=False,
        write_bypass=write_bypass,
    )


def make_cache(num_primitives: int = 16, attrs_per_prim: int = 1,
               entries: int = 8, ways: int = 4, write_bypass: bool = True,
               inflight_window: int = 32) -> AttributeCache:
    attributes = PBAttributesMap([attrs_per_prim] * num_primitives)
    return AttributeCache(tiny_config(entries, ways, write_bypass),
                          attributes, inflight_window=inflight_window)


class TestWrites:
    def test_write_inserts_dirty_line(self):
        cache = make_cache()
        outcome = cache.write(0, 1, opt_number=5, last_use_rank=9)
        assert not outcome.bypassed
        assert outcome.l2_requests == ()
        line = cache.probe(0)
        assert line.dirty and line.opt_number == 5

    def test_double_write_rejected(self):
        cache = make_cache()
        cache.write(0, 1, 5, 9)
        with pytest.raises(RuntimeError):
            cache.write(0, 1, 5, 9)

    def test_write_bypasses_when_all_resident_needed_sooner(self):
        cache = make_cache(entries=8, ways=4)  # 4 primitive lines, 1 set
        for prim, opt in enumerate((2, 3, 4, 6)):
            cache.write(prim, 1, opt_number=opt, last_use_rank=9)
        # Set is full; incoming first use at tile 7 is later than
        # everything resident -> bypass straight to the L2.
        outcome = cache.write(4, 1, opt_number=7, last_use_rank=9)
        assert outcome.bypassed
        assert len(outcome.l2_requests) == 1
        request = outcome.l2_requests[0]
        assert request.is_write and request.region == Region.PB_ATTRIBUTES
        assert cache.stats.write_bypasses == 1

    def test_write_evicts_farther_line(self):
        cache = make_cache(entries=8, ways=4)
        for prim, opt in enumerate((9, 3, 2, 4)):
            cache.write(prim, 1, opt_number=opt, last_use_rank=9)
        outcome = cache.write(4, 1, opt_number=5, last_use_rank=9)
        assert not outcome.bypassed
        assert cache.probe(0) is None          # OPT 9 was the farthest
        # The dirty victim wrote its attribute back to the L2.
        assert [r.is_write for r in outcome.l2_requests] == [True]

    def test_equal_opt_number_bypasses(self):
        """Same tile (equal OPT Numbers) still bypasses per the paper."""
        cache = make_cache(entries=8, ways=4)
        for prim in range(4):
            cache.write(prim, 1, opt_number=5, last_use_rank=9)
        outcome = cache.write(4, 1, opt_number=5, last_use_rank=9)
        assert outcome.bypassed

    def test_without_bypass_always_evicts(self):
        cache = make_cache(entries=8, ways=4, write_bypass=False)
        for prim, opt in enumerate((2, 3, 4, 6)):
            cache.write(prim, 1, opt_number=opt, last_use_rank=9)
        outcome = cache.write(4, 1, opt_number=7, last_use_rank=9)
        assert not outcome.bypassed
        assert cache.probe(4) is not None


class TestReads:
    def test_read_hit_locks_and_updates_opt_number(self):
        cache = make_cache()
        cache.write(0, 1, opt_number=4, last_use_rank=9)
        outcome = cache.read(0, 1, opt_number=8, last_use_rank=9)
        assert outcome.hit
        line = cache.probe(0)
        assert line.opt_number == 8
        assert line.locked
        assert outcome.abp == line.abp

    def test_read_miss_fetches_every_attribute(self):
        cache = make_cache(attrs_per_prim=3, entries=8)
        outcome = cache.read(0, 3, opt_number=5, last_use_rank=9)
        assert not outcome.hit
        fills = [r for r in outcome.l2_requests if not r.is_write]
        assert len(fills) == 3
        assert all(r.region == Region.PB_ATTRIBUTES for r in fills)
        assert all(r.last_tile_rank == 9 for r in fills)

    def test_read_miss_evicts_greatest_opt_number(self):
        cache = make_cache(entries=8, ways=4)
        for prim, opt in enumerate((9, 3, 2, 4)):
            cache.write(prim, 1, opt_number=opt, last_use_rank=9)
        cache.read(4, 1, opt_number=5, last_use_rank=9)
        assert cache.probe(0) is None
        assert cache.probe(1) is not None

    def test_read_filled_line_is_clean(self):
        cache = make_cache()
        cache.read(0, 1, opt_number=5, last_use_rank=9)
        assert not cache.probe(0).dirty

    def test_inflight_window_unlocks_oldest(self):
        cache = make_cache(num_primitives=8, entries=8, ways=4,
                           inflight_window=2)
        cache.read(0, 1, 5, 9)
        cache.read(1, 1, 5, 9)
        cache.read(2, 1, 5, 9)  # pushes primitive 0 out of the window
        assert not cache.probe(0).locked
        assert cache.probe(1).locked and cache.probe(2).locked

    def test_locked_lines_never_evicted(self):
        # 4 primitive-buffer lines, all locked by in-flight reads.  The
        # next read must force rasterizer progress, not evict a lock.
        cache = make_cache(num_primitives=8, entries=8, ways=4,
                           inflight_window=32)
        for prim in range(4):
            cache.read(prim, 1, 5, 9)
        outcome = cache.read(4, 1, 5, 9)
        assert not outcome.hit
        assert cache.stats.forced_unlocks > 0

    def test_buffer_space_pressure_evicts_more_primitives(self):
        """Paper: "in case of a dearth of space, more primitives are
        evicted using OPT"."""
        cache = make_cache(num_primitives=8, attrs_per_prim=2, entries=4,
                           ways=4, inflight_window=1)
        cache.write(0, 2, opt_number=3, last_use_rank=9)
        cache.write(1, 2, opt_number=7, last_use_rank=9)
        # Attribute Buffer full (4 slots) though the primitive buffer has
        # room.  A read of primitive 2 needs 2 slots: evict the farthest
        # (primitive 1).
        cache.read(2, 2, opt_number=5, last_use_rank=9)
        assert cache.probe(1) is None
        assert cache.probe(0) is not None
        assert cache.stats.space_evictions >= 1


class TestFlush:
    def test_flush_writes_dirty_lines_only(self):
        cache = make_cache(attrs_per_prim=2, entries=8)
        cache.write(0, 2, 3, 9)              # dirty
        cache.read(1, 2, 4, 9)               # clean fill
        requests = cache.flush()
        writes = [r for r in requests if r.is_write]
        assert len(writes) == 2              # primitive 0's two attributes
        assert cache.resident_primitives() == 0
        cache.buffer.check_invariants()

    def test_flush_drains_locks_first(self):
        cache = make_cache()
        cache.read(0, 1, 5, 9)
        cache.flush()  # must not raise on the locked chain
        assert cache.resident_primitives() == 0


class TestStats:
    def test_hit_ratio(self):
        cache = make_cache()
        cache.write(0, 1, NO_NEXT_TILE, 9)
        cache.read(0, 1, 5, 9)
        cache.read(1, 1, 5, 9)
        assert cache.stats.reads == 2
        assert cache.stats.read_hits == 1
        assert cache.stats.read_hit_ratio == 0.5
