"""Meta-checks over the lint rule catalogue itself.

Every registered rule — file, project, and all three semantic
families — must be exercised by at least one fixture test, documented
in DESIGN.md or the README, and carry real long-form documentation for
``repro-lint --explain``.  This keeps the catalogue honest as rules
are added: a new code cannot land silently undocumented or untested.
"""

from __future__ import annotations

import pathlib

from repro.lint.core import all_rules
from repro.lint.reporters import render_explain
from repro.lint.semantic.rules import semantic_rules

ROOT = pathlib.Path(__file__).resolve().parent.parent


def catalogue_codes() -> list[str]:
    return sorted({rule.code for rule in all_rules()}
                  | {rule.code for rule in semantic_rules()})


def test_every_rule_has_a_fixture_test():
    corpus = "\n".join(
        path.read_text()
        for path in (ROOT / "tests").glob("test_*.py")
        if path.name != "test_lint_meta.py")
    untested = [code for code in catalogue_codes() if code not in corpus]
    assert untested == [], \
        f"rule codes with no test mention: {untested}"


def test_every_rule_is_documented():
    docs = (ROOT / "DESIGN.md").read_text() \
        + (ROOT / "README.md").read_text()
    undocumented = [code for code in catalogue_codes()
                    if code not in docs]
    assert undocumented == [], \
        f"rule codes absent from DESIGN.md and README.md: {undocumented}"


def test_every_rule_explains_itself():
    for code in catalogue_codes():
        text = render_explain(code)
        assert text is not None, code
        # Header plus a real body, not just the one-line description.
        assert text.startswith(f"{code} ("), code
        assert len(text.splitlines()) > 4, \
            f"{code} has no long-form documentation"


def test_explain_rejects_unknown_codes():
    assert render_explain("SIM999") is None
