"""Tiling Engine event streams: Polygon List Builder and Tile Fetcher."""

import pytest

from repro.config import ScreenConfig
from repro.geometry.scene import Scene
from repro.geometry.traversal import TraversalOrder
from repro.pbuffer.pmd import NO_NEXT_TILE
from repro.tiling import (
    AttributeRead,
    AttributeWrite,
    PmdRead,
    PmdWrite,
    TileDone,
    TilingEngine,
)
from tests.conftest import make_triangle


@pytest.fixture
def screen() -> ScreenConfig:
    return ScreenConfig(128, 64, 32)  # 4x2 tiles


def engine_for(screen, prims, order=TraversalOrder.SCANLINE) -> TilingEngine:
    return TilingEngine(Scene(screen, prims), order)


class TestBuildPhase:
    def test_pmd_writes_precede_each_attribute_write(self, screen):
        trace = engine_for(screen, [make_triangle(0, 28, 4, 10)]).trace()
        kinds = [type(e).__name__ for e in trace.build_events]
        assert kinds == ["PmdWrite", "PmdWrite", "AttributeWrite"]

    def test_attribute_write_carries_first_use_and_dead_tag(self, screen):
        trace = engine_for(screen, [make_triangle(0, 28, 4, 10)]).trace()
        write = trace.build_events[-1]
        assert isinstance(write, AttributeWrite)
        assert write.opt_number == 0        # first tile to read it
        assert write.last_use_rank == 1     # last tile to read it

    def test_clipped_primitives_emit_nothing(self, screen):
        trace = engine_for(screen, [make_triangle(0, 999, 999, 5)]).trace()
        assert trace.build_events == []


class TestFetchPhase:
    def test_every_tile_emits_tile_done_in_order(self, screen):
        trace = engine_for(screen, [make_triangle(0, 4, 4, 5)]).trace()
        dones = [e for e in trace.fetch_events if isinstance(e, TileDone)]
        assert len(dones) == screen.num_tiles
        assert [d.tile_rank for d in dones] == list(range(screen.num_tiles))

    def test_pmd_read_then_attribute_read_pairing(self, screen):
        trace = engine_for(screen, [make_triangle(0, 4, 4, 5)]).trace()
        events = [e for e in trace.fetch_events
                  if not isinstance(e, TileDone)]
        assert isinstance(events[0], PmdRead)
        assert isinstance(events[1], AttributeRead)
        assert events[1].primitive_id == events[0].pmd.primitive_id

    def test_read_opt_number_is_next_use_after_current_tile(self, screen):
        trace = engine_for(screen, [make_triangle(0, 28, 4, 10)]).trace()
        reads = [e for e in trace.fetch_events
                 if isinstance(e, AttributeRead)]
        assert [r.tile_rank for r in reads] == [0, 1]
        assert reads[0].opt_number == 1
        assert reads[1].opt_number == NO_NEXT_TILE

    def test_counts_are_consistent(self, screen):
        prims = [make_triangle(i, 10 + 30 * i, 10, 12) for i in range(4)]
        trace = engine_for(screen, prims).trace()
        assert trace.num_pmd_writes == trace.num_pmd_reads
        assert trace.num_pmd_reads == trace.num_primitive_reads
        assert trace.num_binned_primitives == 4


class TestTraversalOrders:
    @pytest.mark.parametrize("order", list(TraversalOrder))
    def test_reads_arrive_in_nondecreasing_rank(self, screen, order):
        prims = [make_triangle(i, 10 + 17 * i, 10 + 5 * i, 25)
                 for i in range(6)]
        trace = engine_for(screen, prims, order).trace()
        ranks = [e.tile_rank for e in trace.fetch_events
                 if isinstance(e, AttributeRead)]
        assert ranks == sorted(ranks)

    @pytest.mark.parametrize("order", list(TraversalOrder))
    def test_opt_number_is_strictly_future(self, screen, order):
        prims = [make_triangle(i, 10 + 17 * i, 10 + 5 * i, 25)
                 for i in range(6)]
        trace = engine_for(screen, prims, order).trace()
        for event in trace.fetch_events:
            if isinstance(event, AttributeRead):
                assert (event.opt_number == NO_NEXT_TILE
                        or event.opt_number > event.tile_rank)
