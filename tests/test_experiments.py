"""Experiment harness: every figure module runs and reports sane shapes.

These run at a much-reduced scale with a 3-benchmark subset; the
paper-scale numbers are produced by the benchmarks/ harness and the CLI.
"""

import pytest

from repro.experiments import SimulationCache, format_table
from repro.experiments import (
    fig01_intro_gap,
    fig11_lower_bound,
    fig12_associativity,
    fig13_policies,
    fig14_15_l2_accesses,
    fig16_17_mm_pb,
    fig18_19_mm_total,
    fig20_21_energy,
    fig22_gpu_energy,
    fig23_24_throughput,
    tables,
)
from repro.experiments.driver import run_experiments

SCALE = 0.1
ALIASES = ("CCS", "SoD", "DDS")


@pytest.fixture(scope="module")
def cache():
    return SimulationCache(scale=SCALE, aliases=ALIASES)


class TestPolicyFigures:
    def test_fig01_opt_below_lru(self, cache):
        result = fig01_intro_gap.run(cache=cache, sizes_kib=[8, 32, 96])
        for _size, lru, opt in result.rows:
            assert opt <= lru + 1e-9

    def test_fig11_opt_saturates_before_lru(self, cache):
        result = fig11_lower_bound.run(cache=cache,
                                       sizes_kib=[8, 16, 32, 64, 96])
        for _size, bound, lru, opt in result.rows:
            assert bound <= opt + 1e-9 <= lru + 2e-2
        assert "OPT saturates" in result.notes or "did not reach" in result.notes

    def test_fig12_associativity_ordering(self, cache):
        result = fig12_associativity.run(cache=cache, sizes_kib=[16, 48],
                                         associativities=[1, 4, None])
        lru_direct = result.column("lru_1way")
        lru_full = result.column("lru_full")
        opt_full = result.column("belady_full")
        for direct, full, opt in zip(lru_direct, lru_full, opt_full):
            assert opt <= full + 1e-9
            assert full <= direct + 0.05

    def test_fig13_policy_ordering(self, cache):
        result = fig13_policies.run(cache=cache, sizes_kib=[32, 96])
        for row in result.rows:
            _size, bound, mru, _drrip, lru, opt = row
            assert bound <= opt + 1e-9
            assert opt <= lru + 1e-9
            assert lru <= mru + 0.05


class TestSystemFigures:
    def test_fig14_decrease_positive(self, cache):
        result = fig14_15_l2_accesses.run_one("64KiB", cache=cache)
        average = result.row_for("average")
        assert average[5] > 0

    def test_fig16_near_total_elimination(self, cache):
        result = fig16_17_mm_pb.run_one("64KiB", cache=cache)
        for alias in ("CCS", "SoD"):
            assert result.row_for(alias)[5] > 80.0  # percent decrease

    def test_fig18_total_mm_decrease(self, cache):
        result = fig18_19_mm_total.run_one("64KiB", cache=cache)
        assert result.row_for("average")[3] > 0

    def test_fig20_energy_ordering(self, cache):
        result = fig20_21_energy.run_one("64KiB", cache=cache)
        for row in result.rows[:-1]:
            _a, base, no_l2, tcor, _p, _f, _paper = row
            assert tcor <= no_l2 <= base * 1.001

    def test_fig22_gpu_energy_positive(self, cache):
        result = fig22_gpu_energy.run(cache=cache)
        assert result.row_for("average")[1] > 0

    def test_fig23_speedup(self, cache):
        result = fig23_24_throughput.run_one("64KiB", cache=cache)
        assert result.row_for("average")[3] > 1.0


class TestTables:
    def test_table1_static(self):
        result = tables.run_table1()
        assert result.row_for("screen")[1] == "1960x768"

    def test_table2_matches_published(self, cache):
        result = tables.run_table2(cache=cache)
        for row in result.rows:
            published, measured = row[6], row[7]
            assert measured == pytest.approx(published, rel=0.3)


class TestFigRE:
    def test_fig_re_shapes_and_namespaces(self):
        from repro.experiments import fig_re
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        result = fig_re.run(scale=0.08, aliases=("SoD",),
                            registry=registry)
        assert result.exp_id == "fig_re"
        # frames x churn x policy rows for the one benchmark.
        assert len(result.rows) == (len(fig_re.FRAME_COUNTS)
                                    * len(fig_re.CHURN_PCTS)
                                    * len(fig_re.POLICIES))
        skip_col = result.headers.index("skip_%")
        churn_col = result.headers.index("churn_%")
        for row in result.rows:
            if row[churn_col] == 100:
                assert row[skip_col] == 0.0
            if row[churn_col] == 0:
                assert row[skip_col] > 0.0
        snapshot = registry.snapshot()
        assert any(name.startswith("anim.SoD.") for name in snapshot)
        assert any(name.startswith("re.SoD.c000.") for name in snapshot)
        assert "re.SoD.c000.energy.total_nj" in snapshot


class TestRunner:
    def test_run_experiments_aliases(self):
        results = run_experiments(["table1"], scale=SCALE, aliases=ALIASES)
        assert results[0].exp_id == "table1"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiments(["fig99"], scale=SCALE)

    def test_format_table_renders(self, cache):
        result = tables.run_table1()
        text = format_table(result)
        assert "table1" in text and "1960x768" in text
