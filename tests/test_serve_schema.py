"""The serve wire schema: keys, round trips, validation, disk mapping."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import SimulationConfig
from repro.config import DEFAULT_GPU, DEFAULT_TCOR, KIB, TCORConfig
from repro.parallel import DiskCache
from repro.serve import schema
from repro.serve.schema import JobRequest, ServeError
from repro.tcor.system import SystemResult
from repro.workloads.suite import BENCHMARKS

SCALE = 0.05


class TestRequestKey:
    def test_deterministic(self):
        a = JobRequest(alias="GTr", scale=SCALE)
        b = JobRequest(alias="GTr", scale=SCALE)
        assert schema.request_key(a) == schema.request_key(b)

    def test_scheduling_hints_do_not_split_identical_work(self):
        base = JobRequest(alias="GTr", scale=SCALE)
        hinted = JobRequest(alias="GTr", scale=SCALE,
                            priority="interactive", timeout_s=5.0)
        assert schema.request_key(base) == schema.request_key(hinted)

    def test_simulation_fields_do_split(self):
        base = schema.request_key(JobRequest(alias="GTr", scale=SCALE))
        assert schema.request_key(
            JobRequest(alias="CCS", scale=SCALE)) != base
        assert schema.request_key(
            JobRequest(alias="GTr", scale=0.1)) != base
        assert schema.request_key(JobRequest(
            alias="GTr", scale=SCALE,
            config=SimulationConfig(kind="baseline"))) != base

    def test_signature_partitions_the_keyspace(self):
        request = JobRequest(alias="GTr", scale=SCALE)
        assert schema.request_key(request, "sig-a") != \
            schema.request_key(request, "sig-b")

    def test_matches_disk_cache_derivation_style(self):
        """Same canonical form as the store: sha256 hex over sorted
        compact JSON (the literal string must re-derive the key)."""
        request = JobRequest(alias="GTr", scale=SCALE)
        key = schema.request_key(request, "sig")
        assert len(key) == 64 and int(key, 16) >= 0


class TestPayloadRoundTrips:
    def test_request_round_trip(self):
        request = JobRequest(
            alias="CCS", scale=0.25,
            config=SimulationConfig(kind="tcor",
                                    tile_cache_bytes=64 * KIB,
                                    l2_enhancements=False),
            priority="interactive", timeout_s=12.5)
        assert schema.request_from_payload(
            schema.request_to_payload(request)) == request

    def test_request_survives_json(self):
        request = JobRequest(alias="GTr", scale=SCALE,
                             config=SimulationConfig(tcor=DEFAULT_TCOR))
        wire = json.loads(json.dumps(schema.request_to_payload(request)))
        assert schema.request_from_payload(wire) == request

    def test_config_with_custom_gpu_round_trips(self):
        gpu = DEFAULT_GPU.with_tile_cache_size(32 * KIB)
        config = SimulationConfig(kind="baseline", gpu=gpu)
        wire = json.loads(json.dumps(schema.config_to_payload(config)))
        assert schema.config_from_payload(wire) == config

    def test_unknown_payload_keys_are_dropped(self):
        payload = schema.request_to_payload(
            JobRequest(alias="GTr", scale=SCALE))
        payload["config"]["from_the_future"] = True
        assert schema.request_from_payload(payload) == \
            JobRequest(alias="GTr", scale=SCALE)

    def test_status_round_trip(self):
        status = schema.JobStatus(job_id="abc", state=schema.RUNNING,
                                  priority="interactive", lane="pool",
                                  attempts=2, coalesced=3,
                                  queued_for_s=0.5, running_for_s=1.5)
        assert schema.status_from_payload(
            schema.status_to_payload(status)) == status

    def test_job_result_round_trip(self):
        result = SystemResult(label="tcor", alias="GTr", pb_l2_reads=1,
                              mm_reads=2, structure_accesses={"l2": 3})
        job = schema.JobResult(job_id="abc", state=schema.DONE,
                               lane="disk", attempts=1, elapsed_s=0.25,
                               result=result, metrics={"m": 1.0},
                               invariant_failures=())
        wire = json.loads(json.dumps(schema.job_result_to_payload(job)))
        rehydrated = schema.job_result_from_payload(wire)
        assert rehydrated == job
        assert rehydrated.ok

    def test_failed_result_is_not_ok(self):
        job = schema.job_result_from_payload(
            {"id": "abc", "state": schema.FAILED, "error": "boom"})
        assert not job.ok and job.error == "boom"


class TestValidation:
    def test_unknown_alias_rejected(self):
        with pytest.raises(ServeError) as excinfo:
            JobRequest(alias="NotABenchmark")
        assert excinfo.value.code == "bad_request"
        assert excinfo.value.http_status == 400

    @pytest.mark.parametrize("field,value", [
        ("scale", 0.0), ("scale", -1.0),
        ("priority", "urgent"), ("timeout_s", 0.0),
    ])
    def test_bad_fields_rejected(self, field, value):
        kwargs = {"alias": "GTr", field: value}
        with pytest.raises(ServeError):
            JobRequest(**kwargs)

    def test_malformed_wire_request_rejected(self):
        with pytest.raises(ServeError):
            schema.request_from_payload({"alias": "GTr", "scale": "many"})
        with pytest.raises(ServeError):
            schema.request_from_payload("not an object")

    def test_error_payload_round_trip(self):
        error = ServeError.queue_full(8)
        wire = ServeError.from_payload(error.to_payload())
        assert (wire.code, wire.http_status) == ("queue_full", 429)

    def test_error_vocabulary_statuses(self):
        assert ServeError.not_found("x").http_status == 404
        assert ServeError.draining().http_status == 503
        assert ServeError.wait_timeout("x", 1.0).http_status == 504


class TestDiskMapping:
    def test_standard_knobs_are_mappable(self):
        assert schema.disk_mappable(JobRequest(alias="GTr", scale=SCALE))

    def test_non_standard_knobs_bypass_the_disk_lane(self):
        assert not schema.disk_mappable(JobRequest(
            alias="GTr", scale=SCALE,
            config=SimulationConfig(gpu=DEFAULT_GPU)))
        assert not schema.disk_mappable(JobRequest(
            alias="GTr", scale=SCALE,
            config=SimulationConfig(include_background=False)))
        assert not schema.disk_mappable(JobRequest(
            alias="GTr", scale=SCALE,
            config=SimulationConfig(interleaved_lists=False)))

    def test_tcor_resolution_mirrors_the_simulator(self):
        """Explicit config wins, then the total-budget split, then the
        paper default — :func:`repro.tcor.system.simulate_tcor`'s
        order."""
        explicit = TCORConfig.for_total_size(32 * KIB)
        assert schema.effective_tcor_config(
            SimulationConfig(tcor=explicit)) is explicit
        assert schema.effective_tcor_config(
            SimulationConfig(tile_cache_bytes=64 * KIB)) == \
            TCORConfig.for_total_size(64 * KIB)
        assert schema.effective_tcor_config(SimulationConfig()) == \
            DEFAULT_TCOR

    def test_baseline_budget_resolution(self):
        assert schema.effective_tile_cache_bytes(
            SimulationConfig(tile_cache_bytes=64 * KIB)) == 64 * KIB
        assert schema.effective_tile_cache_bytes(SimulationConfig()) == \
            DEFAULT_GPU.tile_cache.size_bytes

    def test_probe_and_store_share_records_with_the_experiment_store(
            self, tmp_path):
        """A record written through the serve mapping is the record
        ``tcor-experiments`` reads, and vice versa."""
        disk = DiskCache(tmp_path, signature="sig")
        spec = BENCHMARKS["GTr"]
        result = SystemResult(label="tcor", alias="GTr", mm_reads=9)

        request = JobRequest(alias="GTr", scale=SCALE,
                             config=SimulationConfig(
                                 tile_cache_bytes=64 * KIB))
        schema.store_disk(disk, request, result)
        assert disk.get_tcor(spec, SCALE,
                             TCORConfig.for_total_size(64 * KIB),
                             l2_enhancements=True) == result

        baseline = dataclasses.replace(result, label="baseline")
        disk.put_baseline(spec, SCALE, 64 * KIB, baseline)
        probe = JobRequest(alias="GTr", scale=SCALE,
                           config=SimulationConfig(
                               kind="baseline",
                               tile_cache_bytes=64 * KIB))
        assert schema.probe_disk(disk, probe) == baseline
