"""Animation layer: determinism, prefix stability, signatures, RE."""

from __future__ import annotations

import pytest

from repro.anim import (
    PATHS,
    AnimationSpec,
    EMPTY_TILE_SIG,
    RenderingElimination,
    anim_from_payload,
    anim_to_payload,
    build_animated_workload,
    camera_transform,
    path_parameter,
    skip_mask,
    tile_signatures,
)
from repro.tcor.system import simulate_tcor
from repro.workloads.suite import BENCHMARKS

ALIAS = "CCS"
SCALE = 0.08


def _scene_bytes(scene) -> list[tuple]:
    return [(p.primitive_id, p.num_attributes,
             p.v0.x, p.v0.y, p.v1.x, p.v1.y, p.v2.x, p.v2.y)
            for p in scene.primitives]


class TestSpec:
    def test_payload_round_trip(self):
        spec = AnimationSpec(frames=5, path="pan", amplitude=0.3,
                             dwell=2, travel=3, churn=0.25, jitter=1.5,
                             seed=9)
        assert anim_from_payload(anim_to_payload(spec)) == spec

    def test_unknown_payload_keys_dropped(self):
        payload = anim_to_payload(AnimationSpec())
        payload["from_the_future"] = 42
        assert anim_from_payload(payload) == AnimationSpec()

    @pytest.mark.parametrize("kwargs", [
        {"frames": 0},
        {"path": "barrel_roll"},
        {"churn": 1.5},
        {"dwell": 0, "travel": 0},
        {"jitter": -1.0},
        {"seed": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AnimationSpec(**kwargs)

    def test_prefix_bounds(self):
        spec = AnimationSpec(frames=4)
        assert spec.prefix(4) == spec
        assert spec.prefix(2).frames == 2
        with pytest.raises(ValueError):
            spec.prefix(5)
        with pytest.raises(ValueError):
            spec.prefix(0)


class TestDeterminism:
    def test_same_spec_same_frames(self):
        anim = AnimationSpec(frames=3, path="orbit", churn=0.3,
                             jitter=2.0, seed=5)
        a = build_animated_workload(BENCHMARKS[ALIAS], anim, scale=SCALE)
        b = build_animated_workload(BENCHMARKS[ALIAS], anim, scale=SCALE)
        for scene_a, scene_b in zip(a.scenes, b.scenes):
            assert _scene_bytes(scene_a) == _scene_bytes(scene_b)

    def test_prefix_reproduces_leading_frames(self):
        """The streaming contract: prefix(k) == first k frames."""
        anim = AnimationSpec(frames=5, path="dolly", churn=0.4,
                             jitter=1.0, seed=13)
        full = build_animated_workload(BENCHMARKS[ALIAS], anim,
                                       scale=SCALE)
        for k in (1, 3, 5):
            part = build_animated_workload(BENCHMARKS[ALIAS],
                                           anim.prefix(k), scale=SCALE)
            assert len(part.scenes) == k
            for frame in range(k):
                assert _scene_bytes(part.scenes[frame]) == \
                    _scene_bytes(full.scenes[frame])

    def test_frame_zero_is_the_suite_scene(self):
        from repro.workloads.suite import build_workload

        anim = AnimationSpec(frames=2, path="orbit", seed=3)
        animated = build_animated_workload(BENCHMARKS[ALIAS], anim,
                                           scale=SCALE)
        base = build_workload(BENCHMARKS[ALIAS], scale=SCALE)
        assert _scene_bytes(animated.scenes[0]) == \
            _scene_bytes(base.scenes[0])

    def test_workload_records_the_recipe(self):
        anim = AnimationSpec(frames=2)
        workload = build_animated_workload(BENCHMARKS[ALIAS], anim,
                                           scale=SCALE)
        assert workload.anim == anim

    def test_churn_respawns_content_but_not_population(self):
        calm = AnimationSpec(frames=3, path="static", churn=0.0, seed=1)
        churned = AnimationSpec(frames=3, path="static", churn=1.0,
                                seed=1)
        a = build_animated_workload(BENCHMARKS[ALIAS], calm, scale=SCALE)
        b = build_animated_workload(BENCHMARKS[ALIAS], churned,
                                    scale=SCALE)
        for frame in range(3):
            assert len(a.scenes[frame]) == len(b.scenes[frame])
        # Full churn: frame 1 shares no geometry with frame 0 ...
        assert _scene_bytes(b.scenes[1]) != _scene_bytes(b.scenes[0])
        # ... while the unchurned static camera repeats it exactly.
        assert _scene_bytes(a.scenes[1]) == _scene_bytes(a.scenes[0])


class TestPaths:
    def test_all_paths_build(self):
        for path in PATHS:
            anim = AnimationSpec(frames=3, path=path, seed=2)
            workload = build_animated_workload(BENCHMARKS[ALIAS], anim,
                                               scale=SCALE)
            assert len(workload.traces) == 3

    def test_dwell_holds_the_camera(self):
        """dwell+travel waypoint schedule: consecutive dwell frames
        share one path parameter, travel frames ease between."""
        params = [path_parameter(frame, 2, 2) for frame in range(6)]
        assert params[0] == params[1]  # first dwell
        assert params[1] < params[2] <= params[3]  # easing forward
        assert params[4] == params[5]  # next dwell

    def test_static_path_is_identity(self):
        from repro.config import DEFAULT_GPU

        anim = AnimationSpec(frames=4, path="static")
        for frame in range(4):
            transform = camera_transform(anim, frame, DEFAULT_GPU.screen)
            point = transform.apply(123.0, 45.0)
            assert point == (123.0, 45.0)


class TestSignatures:
    def test_empty_tiles_use_the_reserved_signature(self, small_screen):
        from repro.geometry.scene import Scene

        scene = Scene(small_screen, [], [])
        signatures = tile_signatures(scene)
        assert len(signatures) == small_screen.num_tiles
        assert all(sig == EMPTY_TILE_SIG for sig in signatures)

    def test_identical_scene_identical_signatures(self):
        anim = AnimationSpec(frames=2, path="static")
        workload = build_animated_workload(BENCHMARKS[ALIAS], anim,
                                           scale=SCALE)
        assert tile_signatures(workload.scenes[0]) == \
            tile_signatures(workload.scenes[1])

    def test_signatures_fit_an_int64(self):
        anim = AnimationSpec(frames=1)
        workload = build_animated_workload(BENCHMARKS[ALIAS], anim,
                                           scale=SCALE)
        for sig in tile_signatures(workload.scenes[0]):
            assert 0 <= sig < 2 ** 63

    def test_skip_mask_rules(self):
        current = [0, 5, 7, 9]
        previous = [0, 5, 8, 9]
        # Empty tiles (sig 0) never skip, matches do, changes don't.
        assert skip_mask(current, previous) == [False, True, False, True]
        assert skip_mask(current, None) == [False] * 4
        with pytest.raises(ValueError):
            skip_mask([1, 2], [1])


class TestRenderingElimination:
    def test_engine_accounting(self):
        engine = RenderingElimination()
        assert engine.begin_frame([3, 0, 4]) is None  # frame 0 renders
        mask = engine.begin_frame([3, 0, 5])
        assert mask == [True, False, False]
        assert engine.stats.signature_compares == 3
        for skipped in mask:
            engine.tile_done(skipped)
        assert engine.stats.tiles_total == 3
        assert engine.stats.tiles_skipped == 1
        assert engine.stats.tiles_rendered == 2
        assert engine.stats.skip_fraction == pytest.approx(1 / 3)

    def test_live_coherent_path_skips_tiles(self):
        anim = AnimationSpec(frames=4, path="orbit", dwell=2, travel=2,
                             seed=7)
        workload = build_animated_workload(BENCHMARKS[ALIAS], anim,
                                           scale=SCALE)
        result = simulate_tcor(workload, rendering_elimination=True)
        assert result.tiles_total > 0
        assert result.tiles_skipped > 0
        assert result.signature_compares > 0
        assert result.structure_accesses["signature_unit"] == \
            result.signature_compares

    def test_live_full_churn_skips_nothing(self):
        anim = AnimationSpec(frames=3, path="static", churn=1.0, seed=7)
        workload = build_animated_workload(BENCHMARKS[ALIAS], anim,
                                           scale=SCALE)
        result = simulate_tcor(workload, rendering_elimination=True)
        assert result.tiles_skipped == 0
        assert result.signature_compares > 0

    def test_re_off_results_carry_no_re_surface(self):
        anim = AnimationSpec(frames=2, path="orbit", seed=7)
        workload = build_animated_workload(BENCHMARKS[ALIAS], anim,
                                           scale=SCALE)
        result = simulate_tcor(workload)
        assert result.tiles_total == 0
        assert result.tiles_skipped == 0
        assert "signature_unit" not in result.structure_accesses
