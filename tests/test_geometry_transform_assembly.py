"""Vertex transform and primitive assembly (the Geometry Pipeline)."""

import math

import numpy as np
import pytest

from repro.config import ScreenConfig
from repro.geometry.assembly import IndexedMesh, PrimitiveAssembly
from repro.geometry.scene import Scene
from repro.geometry.transform import (
    VertexTransform,
    identity,
    look_at,
    perspective,
    rotation_y,
    scaling,
    translation,
)

SCREEN = ScreenConfig(256, 128, 32)


def simple_camera(eye=(0.0, 0.0, 3.0)) -> VertexTransform:
    mvp = perspective(math.radians(60), SCREEN.width / SCREEN.height,
                      0.1, 100.0) @ look_at(eye, (0, 0, 0))
    return VertexTransform(mvp, SCREEN)


class TestMatrices:
    def test_translation_moves_points(self):
        point = translation(1, 2, 3) @ np.array([0, 0, 0, 1.0])
        assert tuple(point[:3]) == (1, 2, 3)

    def test_rotation_y_quarter_turn(self):
        point = rotation_y(math.pi / 2) @ np.array([1, 0, 0, 1.0])
        assert point[0] == pytest.approx(0, abs=1e-12)
        assert point[2] == pytest.approx(-1)

    def test_scaling(self):
        point = scaling(2, 3, 4) @ np.array([1, 1, 1, 1.0])
        assert tuple(point[:3]) == (2, 3, 4)

    def test_perspective_validation(self):
        with pytest.raises(ValueError):
            perspective(1.0, 1.0, near=0, far=10)
        with pytest.raises(ValueError):
            perspective(1.0, 1.0, near=5, far=2)

    def test_look_at_centers_the_target(self):
        transform = VertexTransform(
            perspective(math.radians(60), 2.0, 0.1, 100)
            @ look_at((0, 0, 5), (0, 0, 0)), SCREEN)
        center = transform.to_screen((0, 0, 0))
        assert center.x == pytest.approx(SCREEN.width / 2)
        assert center.y == pytest.approx(SCREEN.height / 2)


class TestViewport:
    def test_ndc_y_up_maps_to_pixel_y_down(self):
        camera = simple_camera()
        above = camera.to_screen((0, 0.5, 0))
        below = camera.to_screen((0, -0.5, 0))
        assert above.y < below.y

    def test_behind_camera_rejected(self):
        camera = simple_camera(eye=(0, 0, 3))
        assert camera.to_screen((0, 0, 10)) is None  # behind the eye

    def test_depth_increases_with_distance(self):
        camera = simple_camera()
        near = camera.to_screen((0, 0, 1.0))
        far = camera.to_screen((0, 0, -5.0))
        assert near.depth < far.depth

    def test_mvp_shape_checked(self):
        with pytest.raises(ValueError):
            VertexTransform(np.eye(3), SCREEN)


class TestMesh:
    def test_cube_structure(self):
        cube = IndexedMesh.cube()
        assert len(cube.positions) == 8
        assert cube.num_triangles == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            IndexedMesh(positions=((0, 0, 0),), indices=(0, 0))
        with pytest.raises(ValueError):
            IndexedMesh(positions=((0, 0, 0),), indices=(0, 0, 1))


class TestAssembly:
    def test_cube_assembles_and_bins(self):
        assembly = PrimitiveAssembly(simple_camera(),
                                     backface_culling=False)
        primitives = assembly.assemble(IndexedMesh.cube())
        assert len(primitives) == 12
        assert [p.primitive_id for p in primitives] == list(range(12))
        scene = Scene(SCREEN, primitives)
        assert scene.average_reuse() >= 1.0  # everything landed on screen

    def test_backface_culling_halves_a_closed_cube(self):
        assembly = PrimitiveAssembly(simple_camera(), backface_culling=True)
        primitives = assembly.assemble(IndexedMesh.cube())
        # A convex closed mesh shows at most half its faces (+ silhouette
        # edge cases), and culling must drop a substantial share.
        assert 0 < len(primitives) < 12
        assert assembly.stats.culled_backface > 0

    def test_near_plane_culling(self):
        camera = simple_camera(eye=(0, 0, 0.2))  # inside the cube
        assembly = PrimitiveAssembly(camera, backface_culling=False)
        assembly.assemble(IndexedMesh.cube())
        assert assembly.stats.culled_near_plane > 0

    def test_vertex_cache_exploits_index_reuse(self):
        assembly = PrimitiveAssembly(simple_camera(),
                                     backface_culling=False)
        assembly.assemble(IndexedMesh.cube())
        # 36 indices over 8 vertices: a 16-entry FIFO catches the reuse.
        assert assembly.stats.vertex_cache_hit_ratio > 0.5

    def test_dense_ids_even_with_culling(self):
        assembly = PrimitiveAssembly(simple_camera(), backface_culling=True)
        primitives = assembly.assemble(IndexedMesh.cube())
        assert [p.primitive_id for p in primitives] == \
            list(range(len(primitives)))
