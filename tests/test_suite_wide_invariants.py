"""Suite-wide invariants: every Table II benchmark, one small pass.

Parametrized over all ten games so a regression in any benchmark's
calibration or in any system path shows up by name.
"""

import pytest

from repro.tcor.system import simulate_baseline, simulate_tcor
from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS, build_workload

SCALE = 0.05


@pytest.fixture(scope="module")
def workloads():
    return {alias: build_workload(BENCHMARKS[alias], scale=SCALE)
            for alias in BENCHMARK_ORDER}


@pytest.mark.parametrize("alias", BENCHMARK_ORDER)
def test_reuse_calibration(workloads, alias):
    workload = workloads[alias]
    published = BENCHMARKS[alias].avg_reuse
    assert workload.measured_reuse() == pytest.approx(published, rel=0.35)


@pytest.mark.parametrize("alias", BENCHMARK_ORDER)
def test_traces_are_self_consistent(workloads, alias):
    trace = workloads[alias].traces[0]
    assert trace.num_pmd_writes == trace.num_pmd_reads
    assert trace.num_pmd_reads == trace.num_primitive_reads
    assert trace.num_binned_primitives <= workloads[alias].num_primitives


@pytest.mark.parametrize("alias", BENCHMARK_ORDER)
def test_tcor_never_loses(workloads, alias):
    workload = workloads[alias]
    base = simulate_baseline(workload)
    tcor = simulate_tcor(workload)
    assert tcor.pb_l2_accesses <= base.pb_l2_accesses
    assert tcor.pb_mm_accesses <= base.pb_mm_accesses
    assert tcor.mm_accesses <= base.mm_accesses
    assert 0.0 <= tcor.attr_read_hit_ratio <= 1.0
