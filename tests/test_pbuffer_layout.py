"""PB-Lists layouts: baseline contiguous vs TCOR interleaved."""

import pytest

from repro.config import ParameterBufferConfig
from repro.pbuffer.layout import (
    ContiguousPBListsLayout,
    InterleavedPBListsLayout,
)

NUM_TILES = 32


@pytest.fixture
def contiguous() -> ContiguousPBListsLayout:
    return ContiguousPBListsLayout(NUM_TILES)


@pytest.fixture
def interleaved() -> InterleavedPBListsLayout:
    return InterleavedPBListsLayout(NUM_TILES)


class TestContiguous:
    def test_consecutive_pmds_are_adjacent(self, contiguous):
        assert contiguous.pmd_address(0, 1) - contiguous.pmd_address(0, 0) == 4

    def test_tiles_are_a_large_power_of_two_apart(self, contiguous):
        stride = contiguous.pmd_address(1, 0) - contiguous.pmd_address(0, 0)
        assert stride == 1024 * 4  # 64 blocks: the conflict pathology

    def test_tile_of_block(self, contiguous):
        address = contiguous.pmd_address(5, 17)
        assert contiguous.tile_of_block(address) == 5

    def test_outside_region_is_unknown(self, contiguous):
        assert contiguous.tile_of_block(0) is None


class TestInterleaved:
    def test_first_section_packs_tiles_densely(self, interleaved):
        # One block per tile: consecutive tiles are 64 bytes apart.
        stride = (interleaved.pmd_address(1, 0)
                  - interleaved.pmd_address(0, 0))
        assert stride == 64

    def test_sections_stack_after_all_tiles(self, interleaved):
        # PMD 16 of tile 0 lives one full section (num_tiles blocks) later.
        stride = (interleaved.pmd_address(0, 16)
                  - interleaved.pmd_address(0, 0))
        assert stride == NUM_TILES * 64

    def test_within_block_offsets(self, interleaved):
        assert (interleaved.pmd_address(3, 1)
                - interleaved.pmd_address(3, 0)) == 4

    def test_tile_of_block_by_modulo(self, interleaved):
        for tile in (0, 7, 31):
            for position in (0, 15, 16, 40):
                address = interleaved.pmd_address(tile, position)
                assert interleaved.tile_of_block(address) == tile


class TestCommon:
    @pytest.mark.parametrize("layout_cls",
                             [ContiguousPBListsLayout,
                              InterleavedPBListsLayout])
    def test_addresses_are_unique(self, layout_cls):
        layout = layout_cls(8)
        seen = set()
        for tile in range(8):
            for position in range(64):
                address = layout.pmd_address(tile, position)
                assert address not in seen
                seen.add(address)

    @pytest.mark.parametrize("layout_cls",
                             [ContiguousPBListsLayout,
                              InterleavedPBListsLayout])
    def test_position_limit_enforced(self, layout_cls):
        layout = layout_cls(8)
        limit = ParameterBufferConfig().max_primitives_per_tile
        with pytest.raises(ValueError):
            layout.pmd_address(0, limit)
        with pytest.raises(ValueError):
            layout.pmd_address(8, 0)

    @pytest.mark.parametrize("layout_cls",
                             [ContiguousPBListsLayout,
                              InterleavedPBListsLayout])
    def test_contains(self, layout_cls):
        layout = layout_cls(8)
        assert layout.contains(layout.base)
        assert layout.contains(layout.pmd_address(7, 1023))
        assert not layout.contains(layout.base - 1)
        assert not layout.contains(layout.base + layout.total_bytes)

    def test_both_layouts_same_total_size(self):
        assert ContiguousPBListsLayout(16).total_bytes == \
            InterleavedPBListsLayout(16).total_bytes
