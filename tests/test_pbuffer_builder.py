"""Parameter Buffer construction: OPT numbers, first/last use ranks."""

import pytest

from repro.config import ScreenConfig
from repro.geometry.scene import Scene
from repro.geometry.traversal import TraversalOrder, traversal_rank
from repro.pbuffer.builder import build_parameter_buffer
from repro.pbuffer.pmd import NO_NEXT_TILE
from tests.conftest import make_triangle


@pytest.fixture
def screen() -> ScreenConfig:
    return ScreenConfig(128, 64, 32)  # 4x2 tiles


def build(screen, prims, order=TraversalOrder.SCANLINE):
    return build_parameter_buffer(Scene(screen, prims), order)


class TestOptNumbers:
    def test_single_tile_primitive_has_no_next_use(self, screen):
        pb = build(screen, [make_triangle(0, 4, 4, 8)])
        slot = pb.tile_lists[0][0]
        assert slot.pmd.opt_number == NO_NEXT_TILE

    def test_multi_tile_primitive_chains_next_uses(self, screen):
        # Spans tiles 0 and 1 horizontally (scanline ranks 0 and 1).
        pb = build(screen, [make_triangle(0, 28, 4, 10)])
        by_tile = {slot.tile_id: slot.pmd.opt_number
                   for slot in pb.slots_by_primitive[0]}
        assert by_tile[0] == 1            # next use: tile 1 (rank 1)
        assert by_tile[1] == NO_NEXT_TILE

    def test_opt_numbers_follow_traversal_not_row_major(self, screen):
        # Under Z-order, tile (0,1) has a different rank than row-major.
        prim = make_triangle(0, 28, 28, 10)  # spans a 2x2 tile block
        pb = build(screen, [prim], TraversalOrder.Z_ORDER)
        rank = traversal_rank(screen, TraversalOrder.Z_ORDER)
        ranks = sorted(rank[slot.tile_id]
                       for slot in pb.slots_by_primitive[0])
        for slot in pb.slots_by_primitive[0]:
            current = rank[slot.tile_id]
            following = [r for r in ranks if r > current]
            expected = following[0] if following else NO_NEXT_TILE
            assert slot.pmd.opt_number == expected

    def test_first_and_last_use_ranks(self, screen):
        pb = build(screen, [make_triangle(0, 28, 4, 10)])
        record = pb.records[0]
        assert record.first_use_rank == 0
        assert record.last_use_rank == 1
        assert record.use_ranks == (0, 1)


class TestLists:
    def test_positions_dense_in_binning_order(self, screen):
        prims = [make_triangle(i, 4, 4, 5) for i in range(3)]
        pb = build(screen, prims)
        assert [slot.position for slot in pb.tile_lists[0]] == [0, 1, 2]
        assert [slot.pmd.primitive_id for slot in pb.tile_lists[0]] == \
            [0, 1, 2]

    def test_clipped_primitives_not_binned(self, screen):
        pb = build(screen, [make_triangle(0, 999, 999, 5),
                            make_triangle(1, 4, 4, 5)])
        assert pb.records[0].use_ranks == ()
        assert len(pb.binned_primitives()) == 1
        assert pb.total_pmds() == 1

    def test_overflowing_tile_list_raises(self, screen):
        prims = [make_triangle(i, 4, 4, 3) for i in range(1025)]
        with pytest.raises(OverflowError):
            build(screen, prims)

    def test_footprint_counts_binned_only(self, screen):
        pb = build(screen, [make_triangle(0, 4, 4, 5, num_attributes=2),
                            make_triangle(1, 999, 999, 5)])
        assert pb.footprint_bytes() == 2 * 64 + 4


class TestAttributesIntegration:
    def test_dead_line_tags_written(self, screen):
        pb = build(screen, [make_triangle(0, 28, 4, 10)])
        for address in pb.attributes.attribute_addresses(0):
            assert pb.attributes.last_tile_of_block(address) == 1

    def test_attribute_counts_match_scene(self, screen):
        pb = build(screen, [make_triangle(0, 4, 4, 5, num_attributes=5)])
        assert pb.attributes.attribute_count(0) == 5
