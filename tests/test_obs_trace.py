"""Event tracing: hooks, sinks, round-trips, trace<->stats conservation."""

import pytest

from repro.obs import (
    JsonlSink,
    Observation,
    TileSummarySink,
    Tracer,
    activation,
    read_trace,
    summarize_trace,
)
from repro.obs import trace as trace_module
from repro.obs.events import CacheAccess, TraceHeader, from_record, to_record
from repro.tcor.system import simulate_baseline, simulate_tcor
from repro.workloads.suite import BENCHMARKS, build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(BENCHMARKS["CCS"], scale=0.06)


def _traced_tcor(workload, tmp_path, **kwargs):
    path = str(tmp_path / "trace.jsonl")
    summary = TileSummarySink()
    tracer = Tracer(sinks=[JsonlSink(path), summary])
    obs = Observation(tracer=tracer)
    result = simulate_tcor(workload, obs=obs, **kwargs)
    tracer.close()
    return path, summary, obs, result


class TestEventCodec:
    def test_record_round_trip(self):
        event = CacheAccess(cache="l2", tile=7, is_write=True, hit=False,
                            bypassed=False, tag=0x42, set_index=3,
                            region="pb_lists", opt_number=9)
        assert from_record(to_record(event)) == event

    def test_unknown_keys_tolerated(self):
        record = to_record(TraceHeader(label="tcor", alias="CCS", scale=0.1,
                                       tiles_x=4, tiles_y=2))
        record["added_in_a_future_version"] = 1
        assert isinstance(from_record(record), TraceHeader)


class TestTracerLifecycle:
    def test_disabled_by_default(self):
        assert trace_module.ACTIVE is None

    def test_activation_restores_previous(self):
        tracer = Tracer()
        with activation(tracer):
            assert trace_module.ACTIVE is tracer
            inner = Tracer()
            with activation(inner):
                assert trace_module.ACTIVE is inner
            assert trace_module.ACTIVE is tracer
        assert trace_module.ACTIVE is None

    def test_simulation_leaves_tracer_deactivated(self, workload, tmp_path):
        _traced_tcor(workload, tmp_path)
        assert trace_module.ACTIVE is None

    def test_ring_buffer_keeps_tail(self):
        tracer = Tracer(ring_entries=4)
        for tag in range(10):
            tracer.eviction("l2", tag=tag, dirty=False, region=None,
                            last_tile_rank=None)
        assert len(tracer.ring) == 4
        assert [event.tag for event in tracer.ring] == [6, 7, 8, 9]


class TestJsonlRoundTrip:
    def test_reload_reproduces_per_tile_summary(self, workload, tmp_path):
        path, summary, _obs, _result = _traced_tcor(workload, tmp_path)
        events = list(read_trace(path))
        assert events, "traced run produced no events"
        assert isinstance(events[0], TraceHeader)
        reloaded = summarize_trace(path)
        assert reloaded.summary() == summary.summary()

    def test_header_carries_run_geometry(self, workload, tmp_path):
        path, _summary, _obs, _result = _traced_tcor(workload, tmp_path)
        header = next(iter(read_trace(path)))
        assert (header.label, header.alias) == ("tcor", "CCS")
        assert header.tiles_x > 0 and header.tiles_y > 0


class TestTraceStatsConservation:
    """The per-tile aggregate of the event stream must reproduce the
    registry's counters exactly — every hook emits if and only if the
    owning stats object counts."""

    def test_tcor_trace_matches_registry(self, workload, tmp_path):
        _path, summary, obs, result = _traced_tcor(workload, tmp_path)
        snap = obs.snapshot()
        assert obs.registry.check_invariants() == []

        l2 = summary.cache_totals("l2")
        assert l2["accesses"] == snap["live.l2.accesses"]
        assert l2["misses"] == snap["live.l2.misses"]

        attr = summary.cache_totals("attribute_cache")
        assert attr["reads"] == snap["live.attribute_cache.reads"]
        assert attr["misses"] == snap["live.attribute_cache.read_misses"]
        assert attr["writes"] == snap["live.attribute_cache.writes"]
        assert attr["opt_evictions"] == snap["live.attribute_cache.evictions"]
        assert attr["opt_bypasses"] \
            == snap["live.attribute_cache.write_bypasses"]

        pl = summary.cache_totals("primitive_list")
        assert pl["accesses"] == snap["live.primitive_list.accesses"]

        # Dirty dead-line drops each avoided one writeback.
        assert l2["dead_writebacks_avoided"] \
            == snap["live.l2.dead_writebacks_avoided"] \
            == result.dead_writebacks_avoided

    def test_baseline_trace_matches_registry(self, workload, tmp_path):
        path = str(tmp_path / "base.jsonl")
        summary = TileSummarySink()
        tracer = Tracer(sinks=[JsonlSink(path), summary])
        obs = Observation(tracer=tracer)
        simulate_baseline(workload, obs=obs)
        tracer.close()
        snap = obs.snapshot()
        assert obs.registry.check_invariants() == []
        l2 = summary.cache_totals("l2")
        assert l2["accesses"] == snap["live.l2.accesses"]
        tile = summary.cache_totals("tile")
        assert tile["accesses"] == snap["live.tile.accesses"]

    def test_events_are_tile_attributed(self, workload, tmp_path):
        _path, summary, _obs, _result = _traced_tcor(workload, tmp_path)
        cells = summary.summary()["attribute_cache"]
        tiles = [tile for tile in cells if tile is not None]
        assert len(tiles) > 1, "events never attributed to tiles"


class TestZeroOverheadWhenDisabled:
    def test_untraced_run_bit_identical(self, workload):
        assert trace_module.ACTIVE is None
        plain = simulate_tcor(workload)
        observed = simulate_tcor(workload, obs=Observation())
        assert plain == observed
