"""Parallel-renderer feeding model (the conclusion's future work)."""

import pytest

from repro.timing import tile_fetcher_throughput
from repro.timing.parallel_renderers import (
    ParallelRenderingEstimate,
    estimate,
    sustainable_renderers,
)
from repro.timing.tiling_timing import ThroughputResult


def fake_throughput(ppc: float) -> ThroughputResult:
    return ThroughputResult("x", "y", primitives_delivered=int(ppc * 1000),
                            cycles=1000, issue_stall_cycles=0, mshr_peak=0)


class TestModel:
    def test_utilization_saturates_at_one(self):
        result = estimate(fake_throughput(0.5), num_renderers=2,
                          renderer_demand_ppc=0.1)
        assert result.renderer_utilization == 1.0
        assert not result.tiling_bound

    def test_tiling_bound_when_overcommitted(self):
        result = estimate(fake_throughput(0.1), num_renderers=10,
                          renderer_demand_ppc=0.05)
        assert result.renderer_utilization == pytest.approx(0.2)
        assert result.tiling_bound

    def test_sustainable_count(self):
        assert sustainable_renderers(fake_throughput(0.4),
                                     renderer_demand_ppc=0.05) == 8
        assert sustainable_renderers(fake_throughput(0.01),
                                     renderer_demand_ppc=0.05) == 1

    def test_speedup_caps_at_the_feed(self):
        result = estimate(fake_throughput(0.1), num_renderers=4,
                          renderer_demand_ppc=0.05)
        assert result.frame_speedup_vs_one_renderer == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate(fake_throughput(0.1), num_renderers=0)
        with pytest.raises(ValueError):
            sustainable_renderers(fake_throughput(0.1), 0)


class TestPaperClaim:
    def test_tcor_sustains_more_renderers(self, tiny_workload):
        """The conclusion's argument, end to end: the faster Tiling
        Engine feeds more parallel renderers."""
        base = tile_fetcher_throughput(tiny_workload, "baseline")
        tcor = tile_fetcher_throughput(tiny_workload, "tcor")
        assert sustainable_renderers(tcor) > sustainable_renderers(base)
