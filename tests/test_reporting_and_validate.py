"""Markdown reporting and the self-check CLI."""

import subprocess
import sys

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.reporting import report_to_markdown, result_to_markdown


@pytest.fixture
def result() -> ExperimentResult:
    return ExperimentResult(
        exp_id="figX", title="demo figure",
        headers=["bench", "value"],
        rows=[["CCS", 1.2345], ["DDS", 7]],
        notes="a caveat",
    )


class TestMarkdown:
    def test_table_structure(self, result):
        markdown = result_to_markdown(result)
        lines = markdown.splitlines()
        assert lines[0] == "## figX: demo figure"
        assert lines[2] == "| bench | value |"
        assert lines[3] == "|---|---|"
        assert "| CCS | 1.234 |" in markdown  # trailing zeros trimmed
        assert "| DDS | 7 |" in markdown
        assert "*a caveat*" in markdown

    def test_report_concatenates(self, result):
        report = report_to_markdown([result, result], title="T")
        assert report.startswith("# T")
        assert report.count("## figX") == 2


class TestValidateCLI:
    def test_self_check_passes(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.validate", "GTr", "0.06"],
            capture_output=True, text=True, timeout=600,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "all checks passed" in completed.stdout
        assert completed.stdout.count("PASS") == 6
