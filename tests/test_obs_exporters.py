"""Exporters: metrics dumps, Prometheus text, heatmaps, and the diff gate."""

import json

import pytest

from repro.obs import (
    JsonlSink,
    Observation,
    TileSummarySink,
    Tracer,
    diff_metrics,
    load_metrics,
    parse_prometheus_text,
    prometheus_text,
    tile_heatmap,
    write_metrics,
)

METRICS = {"live.l2.accesses": 6565, "sim.tcor.CCS.tc64.mm_accesses": 2653,
           "table.fig14.r00.CCS": 0.644, "live.dram.energy_nj": 1234.5}


class TestMetricsDump:
    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        write_metrics(path, METRICS, meta={"scale": 0.2})
        assert load_metrics(path) == METRICS

    def test_dump_is_deterministic(self, tmp_path):
        one, two = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_metrics(one, dict(METRICS), meta={"scale": 0.2})
        write_metrics(two, dict(reversed(METRICS.items())),
                      meta={"scale": 0.2})
        assert open(one).read() == open(two).read()

    def test_load_pytest_benchmark_export(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"benchmarks": [
            {"name": "test_fig14", "stats": {"mean": 1.5, "rounds": 1}},
        ]}))
        metrics = load_metrics(str(path))
        assert metrics["bench.test_fig14.mean"] == 1.5

    def test_load_bare_flat_dict(self, tmp_path):
        path = tmp_path / "flat.json"
        path.write_text(json.dumps({"a.b": 1}))
        assert load_metrics(str(path)) == {"a.b": 1}


class TestPrometheus:
    def test_exact_round_trip(self):
        text = prometheus_text(METRICS)
        assert parse_prometheus_text(text) == METRICS

    def test_int_float_types_survive(self):
        parsed = parse_prometheus_text(prometheus_text(METRICS))
        assert isinstance(parsed["live.l2.accesses"], int)
        assert isinstance(parsed["table.fig14.r00.CCS"], float)


class TestDiffGate:
    def test_identical_is_clean(self):
        report = diff_metrics(METRICS, dict(METRICS))
        assert report.clean
        assert report.describe().startswith("CLEAN")

    def test_plus_one_drift_detected(self):
        current = dict(METRICS)
        current["live.l2.accesses"] += 1
        report = diff_metrics(METRICS, current)
        assert not report.clean
        assert any(d.name == "live.l2.accesses" for d in report.drifts)

    def test_minus_one_drift_detected(self):
        current = dict(METRICS)
        current["live.l2.accesses"] -= 1
        assert not diff_metrics(METRICS, current).clean

    def test_missing_metric_fails_added_passes(self):
        grown = dict(METRICS, new_metric=1)
        assert diff_metrics(METRICS, grown).clean
        shrunk = dict(METRICS)
        del shrunk["live.l2.accesses"]
        report = diff_metrics(METRICS, shrunk)
        assert not report.clean and report.missing == ("live.l2.accesses",)

    def test_rel_tol_spares_floats_not_ints(self):
        current = dict(METRICS)
        current["live.dram.energy_nj"] *= 1.0005
        current["live.l2.accesses"] += 1
        report = diff_metrics(METRICS, current, rel_tol=0.01)
        names = [d.name for d in report.drifts]
        assert "live.dram.energy_nj" not in names
        assert "live.l2.accesses" in names

    def test_prefix_scopes_comparison(self):
        current = dict(METRICS)
        current["live.l2.accesses"] += 1
        assert diff_metrics(METRICS, current, prefix="sim.").clean
        assert not diff_metrics(METRICS, current, prefix="live.").clean


class TestHeatmap:
    def test_traced_run_renders_heatmap(self, tmp_path):
        from repro.tcor.system import simulate_tcor
        from repro.workloads.suite import BENCHMARKS, build_workload

        workload = build_workload(BENCHMARKS["CCS"], scale=0.05)
        summary = TileSummarySink()
        tracer = Tracer(sinks=[summary])
        simulate_tcor(workload, obs=Observation(tracer=tracer))
        tracer.close()
        art = tile_heatmap(summary, "attribute_cache")
        assert "attribute_cache" in art
        assert len(art.splitlines()) > 3

    def test_unknown_cache_raises(self):
        with pytest.raises(ValueError):
            tile_heatmap(TileSummarySink(), "nope")


class TestMetricsCli:
    def _dump(self, tmp_path, name, metrics):
        path = str(tmp_path / name)
        write_metrics(path, metrics)
        return path

    def test_diff_clean_exit_zero(self, tmp_path, capsys):
        from repro.tools.metrics_cli import main

        base = self._dump(tmp_path, "base.json", METRICS)
        assert main(["diff", base, base]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_diff_drift_exit_one(self, tmp_path, capsys):
        from repro.tools.metrics_cli import main

        base = self._dump(tmp_path, "base.json", METRICS)
        drifted = self._dump(tmp_path, "cur.json",
                             dict(METRICS, **{"live.l2.accesses": 6566}))
        assert main(["diff", base, drifted]) == 1
        out = capsys.readouterr().out
        assert "live.l2.accesses" in out and "DRIFT" in out

    def test_diff_against_benchmark_export(self, tmp_path):
        from repro.tools.metrics_cli import main

        bench = tmp_path / "BENCH_demo.json"
        bench.write_text(json.dumps({"benchmarks": [
            {"name": "t", "stats": {"mean": 2.0}}]}))
        same = self._dump(tmp_path, "cur.json", {"bench.t.mean": 2.0})
        assert main(["diff", str(bench), same]) == 0

    def test_show_and_summarize(self, tmp_path, capsys):
        from repro.tools.metrics_cli import main

        dump = self._dump(tmp_path, "m.json", METRICS)
        assert main(["show", dump, "--prefix", "live."]) == 0
        out = capsys.readouterr().out
        assert "live.l2.accesses = 6565" in out
        assert "sim.tcor" not in out
        assert main(["summarize", dump]) == 0
        assert "4 metrics" in capsys.readouterr().out
