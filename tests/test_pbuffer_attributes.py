"""PB-Attributes address map."""

import pytest

from repro.pbuffer.attributes import PBAttributesMap


class TestAddressing:
    def test_sequential_block_aligned(self):
        attrs = PBAttributesMap([2, 3, 1])
        base = attrs.base
        assert attrs.primitive_base(0) == base
        assert attrs.primitive_base(1) == base + 2 * 64
        assert attrs.primitive_base(2) == base + 5 * 64
        assert attrs.total_bytes == 6 * 64

    def test_attribute_addresses(self):
        attrs = PBAttributesMap([3])
        assert attrs.attribute_addresses(0) == [
            attrs.base, attrs.base + 64, attrs.base + 128]

    def test_slot_bounds(self):
        attrs = PBAttributesMap([2])
        with pytest.raises(ValueError):
            attrs.attribute_address(0, 2)

    def test_zero_attributes_rejected(self):
        with pytest.raises(ValueError):
            PBAttributesMap([3, 0])

    def test_contains(self):
        attrs = PBAttributesMap([1, 1])
        assert attrs.contains(attrs.base)
        assert attrs.contains(attrs.base + 127)
        assert not attrs.contains(attrs.base + 128)

    def test_counts_exposed(self):
        attrs = PBAttributesMap([4, 2])
        assert attrs.num_primitives == 2
        assert attrs.attribute_count(0) == 4


class TestDeadLineTags:
    def test_tag_and_lookup(self):
        attrs = PBAttributesMap([2])
        attrs.tag_last_tile(0, last_tile_rank=17)
        for address in attrs.attribute_addresses(0):
            assert attrs.last_tile_of_block(address) == 17

    def test_untagged_blocks_unknown(self):
        attrs = PBAttributesMap([1])
        assert attrs.last_tile_of_block(attrs.base) is None
