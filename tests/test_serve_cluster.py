"""The sharded cluster end to end: router, tiers, failover.

The acceptance criteria this file pins:

- results served through the router are **byte-identical** to direct
  :func:`repro.api.simulate` calls;
- requests shard by key affinity, exactly where the hash ring says;
- identical submissions coalesce at the router (one forward);
- the memory and disk tiers serve repeats without forwarding;
- killing a backend mid-soak loses zero jobs — drained work completes
  on the survivors, still byte-identical;
- a backend speaking a distant wire-schema version is quarantined via
  the typed negotiation, never silently misparsed.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import SimulationConfig, simulate
from repro.config import KIB
from repro.parallel import DiskCache, result_to_dict
from repro.serve import InProcessServer, JobRequest, schema
from repro.serve.cluster import Router, parse_backends
from repro.serve.schema import ServeError
from repro.serve.tiers import MemoryTier, TieredResultCache
from repro.tcor.system import SystemResult
from repro.workloads.suite import BENCHMARKS, build_workload

SCALE = 0.05
REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def direct_run(alias, config):
    workload = build_workload(BENCHMARKS[alias], scale=SCALE)
    return simulate(workload, config)


def canonical(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


def make_router(backends, **kwargs):
    kwargs.setdefault("tier",
                      TieredResultCache(memory=MemoryTier(1 << 20)))
    kwargs.setdefault("probe_interval_s", 0.2)
    kwargs.setdefault("fail_threshold", 1)
    kwargs.setdefault("connect_timeout_s", 5.0)
    return Router(parse_backends(backends), **kwargs)


class TestParseBackends:
    def test_flexible_entry_forms(self):
        backends = parse_backends(
            {"backends": ["127.0.0.1:1001",
                          {"name": "custom", "host": "127.0.0.1",
                           "port": 1002},
                          {"address": "127.0.0.1:1003"}]})
        assert [b.name for b in backends] == ["shard0", "custom",
                                              "shard2"]
        assert [b.port for b in backends] == [1001, 1002, 1003]

    def test_rejections_are_typed(self):
        for bad in ([], ["nocolon"], [{"name": "a", "address": "h:1"},
                                      {"name": "a", "address": "h:2"}],
                    [42]):
            with pytest.raises(ServeError) as info:
                parse_backends(bad)
            assert info.value.code == "bad_request"


@pytest.fixture(scope="module")
def cluster():
    """Router front door over two real in-process backend workers."""
    with InProcessServer(jobs=1, batch_window_s=0.02,
                         name="alpha") as alpha:
        with InProcessServer(jobs=1, batch_window_s=0.02,
                             name="beta") as beta:
            router = make_router(
                [{"name": "alpha", "address":
                  f"{alpha.host}:{alpha.port}"},
                 {"name": "beta", "address":
                  f"{beta.host}:{beta.port}"}])
            with InProcessServer(scheduler=router) as front:
                yield front, router


class TestClusterServing:
    @pytest.mark.parametrize("alias,config", [
        ("GTr", SimulationConfig(kind="tcor")),
        ("CCS", SimulationConfig(kind="baseline",
                                 tile_cache_bytes=64 * KIB)),
    ], ids=["tcor-GTr", "baseline-CCS"])
    def test_routed_equals_direct_simulate(self, cluster, alias,
                                           config):
        front, router = cluster
        with front.client() as client:
            served = client.run(JobRequest(alias=alias, scale=SCALE,
                                           config=config),
                                timeout_s=300)
        assert served.state == schema.DONE
        assert served.shard in ("alpha", "beta")
        assert served.served_by in ("alpha", "beta")
        direct = direct_run(alias, config)
        assert canonical(served.result) == canonical(direct.result)
        assert dict(served.metrics) == dict(direct.metrics)

    def test_shard_affinity_matches_the_ring(self, cluster):
        front, router = cluster
        request = JobRequest(alias="GTr", scale=SCALE,
                             config=SimulationConfig(
                                 tile_cache_bytes=32 * KIB))
        key = schema.request_key(request, router.tier.signature)
        predicted = router.ring.node_for(key)
        with front.client() as client:
            served = client.run(request, timeout_s=300)
        assert served.state == schema.DONE
        assert served.shard == predicted

    def test_healthz_shows_the_cluster_shape(self, cluster):
        front, router = cluster
        with front.client() as client:
            health = client.healthz()
        assert health["role"] == "router"
        assert health["backends_up"] == 2
        assert set(health["backends"]) == {"alpha", "beta"}
        assert health["schema_version"] == schema.SCHEMA_VERSION

    def test_duplicate_submissions_coalesce_at_the_router(
            self, cluster):
        front, router = cluster
        request = JobRequest(alias="GTr", scale=SCALE,
                             config=SimulationConfig(
                                 kind="baseline",
                                 tile_cache_bytes=32 * KIB))
        n = 5
        with front.client() as client:
            before = client.metrics()
            ids = [client.submit(request)["id"] for _ in range(n)]
            assert len(set(ids)) == 1
            result = client.wait(ids[0], timeout_s=300)
            after = client.metrics()
        assert result.state == schema.DONE
        assert after["serve.cluster.coalesced"] \
            - before.get("serve.cluster.coalesced", 0) == n - 1
        assert after["serve.cluster.forwarded"] \
            - before.get("serve.cluster.forwarded", 0) == 1

    def test_repeat_submission_is_a_memo_hit(self, cluster):
        front, router = cluster
        request = JobRequest(alias="GTr", scale=SCALE)
        with front.client() as client:
            first = client.run(request, timeout_s=300)
            before = client.metrics()
            again = client.submit(request)
            after = client.metrics()
        assert again["reused"] is True
        assert after["serve.cluster.memo_hits"] \
            - before.get("serve.cluster.memo_hits", 0) == 1
        assert first.state == schema.DONE

    def test_metrics_export_the_cluster_surface(self, cluster):
        front, router = cluster
        with front.client() as client:
            metrics = client.metrics()
        for name in ("serve.cluster.submitted",
                     "serve.cluster.forwarded",
                     "serve.cluster.tier.memory_hits",
                     "serve.cluster.tier.disk_hits",
                     "serve.cluster.requeued",
                     "serve.cluster.backends_up",
                     "serve.cluster.shard.alpha.forwarded",
                     "serve.cluster.shard.beta.forwarded"):
            assert name in metrics, name
        assert metrics["serve.cluster.backends_up"] == 2
        assert metrics["serve.cluster.backends_total"] == 2


class TestMemoryTierLane:
    def test_memo_evicted_repeat_serves_from_the_memory_tier(self):
        """With the router memo squeezed to one entry, a repeat of an
        evicted key must be answered by the memory tier — no forward,
        lane == "memory"."""
        request_a = JobRequest(alias="GTr", scale=SCALE)
        request_b = JobRequest(alias="GTr", scale=SCALE,
                               config=SimulationConfig(
                                   tile_cache_bytes=32 * KIB))
        with InProcessServer(jobs=1, batch_window_s=0.02) as backend:
            router = make_router(
                [f"{backend.host}:{backend.port}"], memo_limit=1)
            with InProcessServer(scheduler=router) as front:
                with front.client() as client:
                    client.run(request_a, timeout_s=300)
                    client.run(request_b, timeout_s=300)  # evicts A
                    forwarded = client.metrics()[
                        "serve.cluster.forwarded"]
                    repeat = client.run(request_a, timeout_s=60)
                    after = client.metrics()
        assert repeat.state == schema.DONE
        assert repeat.lane == "memory"
        assert after["serve.cluster.tier.memory_hits"] == 1
        assert after["serve.cluster.forwarded"] == forwarded  # no new


class TestDiskTierLane:
    def test_disk_warm_key_never_reaches_a_backend(self, tmp_path):
        """A store record warms the router's disk tier: the job is
        served lane=="disk" even with every backend dead."""
        disk = DiskCache(tmp_path, signature="cluster-sig")
        request = JobRequest(alias="GTr", scale=SCALE)
        stored = SystemResult(label="stored-run", alias="GTr")
        schema.store_disk(disk, request, stored)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead = probe.getsockname()[1]
        router = make_router(
            [f"127.0.0.1:{dead}"],
            tier=TieredResultCache(memory=MemoryTier(1 << 20),
                                   disk=disk),
            no_backend_wait_s=0.5)
        with InProcessServer(scheduler=router) as front:
            with front.client() as client:
                served = client.run(request, timeout_s=60)
                metrics = client.metrics()
                repeat = client.submit(request)
        assert served.state == schema.DONE
        assert served.lane == "disk"
        assert served.result == stored
        assert metrics["serve.cluster.tier.disk_hits"] == 1
        assert repeat["reused"] is True  # memo now holds it


class TestVersionQuarantine:
    def test_distant_schema_version_marks_the_backend_down(self):
        """A backend advertising a far wire-schema version must be
        quarantined by the health loop, and jobs must fail with the
        typed no-backends error instead of being misparsed."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = listener.getsockname()[1]
        stop = threading.Event()

        def fake_far_backend():
            listener.settimeout(0.2)
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                with conn:
                    reader = conn.makefile("rb")
                    line = reader.readline()
                    if line:
                        conn.sendall(json.dumps(
                            {"ok": True, "schema_version":
                             schema.SCHEMA_VERSION + 10}).encode()
                            + b"\n")

        thread = threading.Thread(target=fake_far_backend, daemon=True)
        thread.start()
        try:
            router = make_router([f"127.0.0.1:{port}"],
                                 probe_interval_s=0.1,
                                 no_backend_wait_s=0.5)
            with InProcessServer(scheduler=router) as front:
                with front.client() as client:
                    deadline = time.time() + 10
                    while time.time() < deadline:
                        if client.healthz()["backends_up"] == 0:
                            break
                        time.sleep(0.05)
                    health = client.healthz()
                    result = client.run(
                        JobRequest(alias="GTr", scale=SCALE),
                        timeout_s=60)
                    metrics = client.metrics()
        finally:
            stop.set()
            thread.join(timeout=5)
            listener.close()
        assert health["backends_up"] == 0
        assert "version" in health["backends"]["shard0"]["error"]
        assert result.state == schema.FAILED
        assert "no healthy backend" in result.error
        assert metrics["serve.cluster.version_mismatch"] >= 1


def spawn_backend(name: str, tmp_path: Path) -> tuple:
    port_file = tmp_path / f"{name}.port"
    env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
    # Each backend gets its own process group: SIGKILL must take the
    # worker-pool children down with the server, or their inherited
    # socket fds keep the router's in-flight reads from seeing EOF
    # (exactly like a hung — not dead — machine would).
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--port-file", str(port_file), "--jobs", "1",
         "--no-disk-cache", "--name", name],
        stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT, env=env,
        start_new_session=True)
    return proc, port_file


def kill_group(proc: subprocess.Popen) -> None:
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass  # already gone
    proc.wait(timeout=30)


class TestFailoverMidSoak:
    def test_killed_backend_loses_no_jobs(self, tmp_path):
        """The drain/requeue contract: SIGKILL one of three backends
        with work in flight; every job completes on the survivors,
        byte-identical to direct simulate()."""
        names = ("shard0", "shard1", "shard2")
        procs = {}
        try:
            spawned = {name: spawn_backend(name, tmp_path)
                       for name in names}
            procs = {name: proc for name, (proc, _) in spawned.items()}
            deadline = time.time() + 120
            ports = {}
            for name, (_, port_file) in spawned.items():
                while not port_file.exists() and time.time() < deadline:
                    time.sleep(0.05)
                ports[name] = int(port_file.read_text())

            router = make_router(
                [{"name": name, "address": f"127.0.0.1:{ports[name]}"}
                 for name in names],
                probe_interval_s=0.2, retry_backoff_s=0.05,
                max_forward_attempts=6, forward_timeout_s=300.0)
            configs = [
                ("GTr", SimulationConfig(kind="tcor")),
                ("GTr", SimulationConfig(kind="baseline")),
                ("GTr", SimulationConfig(tile_cache_bytes=32 * KIB)),
                ("CCS", SimulationConfig(kind="tcor")),
                ("CCS", SimulationConfig(kind="baseline")),
                ("CCS", SimulationConfig(tile_cache_bytes=64 * KIB)),
            ]
            requests = [JobRequest(alias=alias, scale=SCALE,
                                   config=config)
                        for alias, config in configs]
            # Kill the shard that owns the first request's key, so at
            # least one in-flight forward demonstrably drains.
            victim = router.ring.node_for(
                schema.request_key(requests[0],
                                   router.tier.signature))
            with InProcessServer(scheduler=router) as front:
                with front.client(timeout_s=300.0) as client:
                    ids = [client.submit(request)["id"]
                           for request in requests]
                    time.sleep(0.3)  # let forwards reach the shards
                    kill_group(procs[victim])
                    results = [client.wait(job_id, timeout_s=300)
                               for job_id in ids]
                    metrics = client.metrics()
        finally:
            for proc in procs.values():
                kill_group(proc)

        assert all(r.state == schema.DONE for r in results), \
            [(r.state, r.error) for r in results]
        survivors = set(names) - {victim}
        finished_after_kill = [r for r in results if r.shard != victim]
        assert finished_after_kill, "expected post-kill completions"
        assert all(r.shard in survivors for r in finished_after_kill)
        assert metrics["serve.cluster.backend_down"] >= 1
        for request, served in zip(requests, results):
            direct = direct_run(request.alias, request.config)
            assert canonical(served.result) == canonical(direct.result)
