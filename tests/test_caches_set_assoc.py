"""The set-associative cache simulator proper."""

import pytest

from repro.caches.line import LineMeta
from repro.caches.policies import make_policy
from repro.caches.set_assoc import SetAssociativeCache


def lru_cache(num_sets=4, ways=2, line_bytes=64):
    return SetAssociativeCache(num_sets, ways, line_bytes,
                               make_policy("lru"))


class TestBasics:
    def test_geometry(self):
        cache = lru_cache(num_sets=8, ways=4)
        assert cache.size_bytes == 8 * 4 * 64

    def test_line_and_set_mapping(self):
        cache = lru_cache(num_sets=4)
        assert cache.line_address(0) == cache.line_address(63) == 0
        assert cache.line_address(64) == 1
        assert cache.set_of(64 * 4) == 0
        assert cache.set_of(64 * 5) == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            lru_cache(num_sets=0)
        with pytest.raises(ValueError):
            SetAssociativeCache(4, 2, 48, make_policy("lru"))

    def test_same_line_offsets_hit(self):
        cache = lru_cache()
        cache.access(100)
        assert cache.access(101).hit
        assert cache.access(64).hit  # 100 and 64 share line 1


class TestWriteBack:
    def test_dirty_eviction_reports_writeback(self):
        cache = lru_cache(num_sets=1, ways=1)
        cache.access(0, is_write=True)
        result = cache.access(64)
        assert result.evicted.tag == 0
        assert result.evicted.dirty
        assert cache.stats.writebacks == 1

    def test_clean_eviction_is_not_a_writeback(self):
        cache = lru_cache(num_sets=1, ways=1)
        cache.access(0)
        cache.access(64)
        assert cache.stats.writebacks == 0
        assert cache.stats.clean_evictions == 1

    def test_write_hit_dirties_line(self):
        cache = lru_cache(num_sets=1, ways=1)
        cache.access(0)
        cache.access(0, is_write=True)
        result = cache.access(64)
        assert result.evicted.dirty

    def test_write_no_allocate_mode(self):
        cache = SetAssociativeCache(1, 1, 64, make_policy("lru"),
                                    write_allocate=False)
        result = cache.access(0, is_write=True)
        assert result.bypassed
        assert cache.occupancy() == 0


class TestEvictableFilter:
    def test_locked_lines_are_skipped(self):
        cache = lru_cache(num_sets=1, ways=2)
        cache.access(0)
        cache.access(64)
        result = cache.access(128, evictable=lambda line: line.tag != 0)
        assert result.evicted.tag == 1  # LRU would pick 0, but it is locked

    def test_all_locked_bypasses(self):
        cache = lru_cache(num_sets=1, ways=1)
        cache.access(0)
        result = cache.access(64, evictable=lambda line: False)
        assert result.bypassed
        assert cache.probe(0) is not None
        assert cache.stats.bypasses == 1


class TestMeta:
    def test_meta_merges_on_hit(self):
        cache = lru_cache()
        cache.access(0, meta=LineMeta(region=2, last_tile_rank=7))
        cache.access(0, meta=LineMeta(opt_number=3))
        line = cache.probe(0)
        assert line.meta.region == 2
        assert line.meta.last_tile_rank == 7
        assert line.meta.opt_number == 3

    def test_region_stats(self):
        cache = lru_cache()
        cache.access(0, meta=LineMeta(region=1))
        cache.access(0, is_write=True, meta=LineMeta(region=1))
        cache.access(640, meta=LineMeta(region=2))
        assert cache.stats.region_accesses(1) == 2
        assert cache.stats.region_misses(1) == 1
        assert cache.stats.region_accesses(2) == 1


class TestMaintenance:
    def test_flush_returns_everything(self):
        cache = lru_cache(num_sets=2, ways=2)
        cache.access(0, is_write=True)
        cache.access(64)
        flushed = cache.flush()
        assert len(flushed) == 2
        assert sum(line.dirty for line in flushed) == 1
        assert cache.occupancy() == 0

    def test_reset_clears_stats_and_contents(self):
        cache = lru_cache()
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.occupancy() == 0
        assert not cache.access(0).hit

    def test_occupancy_bounded_by_capacity(self):
        cache = lru_cache(num_sets=2, ways=2)
        for line in range(32):
            cache.access(line * 64)
        assert cache.occupancy() == 4


class TestEvictMatching:
    def test_evicts_only_matching_lines(self):
        cache = lru_cache(num_sets=2, ways=2)
        cache.access(0, meta=LineMeta(region=1))           # set 0
        cache.access(64, meta=LineMeta(region=2))          # set 1
        cache.access(128, meta=LineMeta(region=1))         # set 0
        evicted = cache.evict_matching(lambda line: line.meta.region == 1)
        assert len(evicted) == 2
        assert cache.occupancy() == 1
        assert cache.probe(64) is not None
        assert cache.probe(0) is None and cache.probe(128) is None

    def test_reports_dirty_state_and_meta(self):
        cache = lru_cache(num_sets=1, ways=2)
        cache.access(0, is_write=True, meta=LineMeta(region=3))
        cache.access(64, meta=LineMeta(region=3))
        evicted = cache.evict_matching(lambda line: True)
        assert [line.dirty for line in evicted] == [True, False]
        assert all(line.meta.region == 3 for line in evicted)

    def test_counts_writebacks_like_any_eviction(self):
        cache = lru_cache(num_sets=1, ways=2)
        cache.access(0, is_write=True)
        cache.access(64)
        cache.evict_matching(lambda line: True)
        assert cache.stats.writebacks == 1
        assert cache.stats.clean_evictions == 1

    def test_policy_forgets_evicted_lines(self):
        cache = lru_cache(num_sets=1, ways=2)
        cache.access(0)
        cache.access(64)
        cache.evict_matching(lambda line: line.tag == 0)
        # Tag 0 must be re-insertable without tripping policy state.
        assert not cache.access(0).hit
        assert cache.occupancy() == 2

    def test_no_match_is_a_no_op(self):
        cache = lru_cache()
        cache.access(0)
        assert cache.evict_matching(lambda line: False) == []
        assert cache.occupancy() == 1
