"""The five SIM1xx whole-program rules, on fixture projects.

Each fixture is a ``{path: source}`` dict fed straight to
:func:`semantic_pass` with caching off — the same entry point the
engine uses, so suppressions, rule scoping and message text are all
exercised end to end.
"""

from __future__ import annotations

from textwrap import dedent

from repro.lint.semantic.engine import semantic_pass


def run(sources: dict[str, str], select: set[str] | None = None):
    dedented = {path: dedent(source) for path, source in sources.items()}
    return semantic_pass(dedented, select=select)


def rules_of(result) -> list[str]:
    return [violation.rule for violation in result.violations]


WORKER_POOL = """
    from concurrent.futures import ProcessPoolExecutor

    TICKS = 0

    def bump():
        global TICKS
        TICKS += 1

    def worker(n):
        bump()
        return n

    def clean_worker(n):
        return n * 2

    def fan_out(jobs):
        with ProcessPoolExecutor() as pool:
            return [pool.submit(worker, job) for job in jobs]

    def fan_out_clean(jobs):
        with ProcessPoolExecutor() as pool:
            return [pool.submit(clean_worker, job) for job in jobs]
"""


class TestForkSafety:
    def test_transitive_global_write_is_flagged_at_the_submit_site(self):
        result = run({"src/pkg/pool.py": WORKER_POOL},
                     select={"SIM101"})
        assert rules_of(result) == ["SIM101"]
        violation = result.violations[0]
        assert "TICKS" in violation.message
        assert "worker" in violation.message
        # Anchored at the submit call, not at the global write.
        assert "pool.submit(worker" in dedent(WORKER_POOL).splitlines()[
            violation.line - 1]

    def test_lambda_and_nested_submissions_are_unpicklable(self):
        result = run({"src/pkg/pool.py": """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(jobs):
                def local(job):
                    return job
                with ProcessPoolExecutor() as pool:
                    pool.submit(lambda j: j, jobs[0])
                    pool.submit(local, jobs[1])
        """}, select={"SIM101"})
        messages = sorted(v.message for v in result.violations)
        assert len(messages) == 2
        assert "lambda" in messages[0]
        assert "nested function" in messages[1]

    def test_thread_pools_are_not_flagged(self):
        result = run({"src/pkg/pool.py": """
            from concurrent.futures import ThreadPoolExecutor

            STATE = 0

            def worker(n):
                global STATE
                STATE = n

            def fan_out(jobs):
                with ThreadPoolExecutor() as pool:
                    return [pool.submit(worker, job) for job in jobs]
        """}, select={"SIM101"})
        assert rules_of(result) == []


class TestTraceCoverage:
    def test_unhooked_stats_mutation_is_flagged(self):
        result = run({"src/pkg/stats.py": """
            class FooStats:
                hits: int = 0

            class Foo:
                def __init__(self):
                    self.stats = FooStats()

                def touch(self):
                    self.stats.hits += 1
        """}, select={"SIM102"})
        assert rules_of(result) == ["SIM102"]
        assert "FooStats.hits" in result.violations[0].message

    def test_hook_on_a_caller_chain_covers_the_mutation(self):
        result = run({"src/pkg/stats.py": """
            from pkg import trace

            class FooStats:
                hits: int = 0

                def note_hit(self):
                    self.hits += 1

            class Foo:
                def __init__(self):
                    self.stats = FooStats()

                def touch(self):
                    tracer = trace.ACTIVE
                    self.stats.note_hit()
        """}, select={"SIM102"})
        assert rules_of(result) == []

    def test_file_suppression_silences_the_finding_through_the_engine(
            self, tmp_path):
        from repro.lint import lint_paths
        source = dedent("""
            # lint: disable-file=SIM102
            class FooStats:
                hits: int = 0

            class Foo:
                def __init__(self):
                    self.stats = FooStats()

                def touch(self):
                    self.stats.hits += 1
        """)
        (tmp_path / "stats.py").write_text(source)
        result = lint_paths([str(tmp_path)], root=tmp_path,
                            use_cache=False, semantic=True,
                            select={"SIM102"})
        assert rules_of(result) == []
        # The raw pass still sees it — suppression is the engine's job.
        raw = semantic_pass({"stats.py": source}, select={"SIM102"})
        assert rules_of(raw) == ["SIM102"]


class TestConfigFreeze:
    def test_param_annotated_config_store_is_flagged(self):
        result = run({"src/pkg/tune.py": """
            class RunConfig:
                def __init__(self, scale: float):
                    self.scale = scale

            def tune(config: RunConfig):
                config.scale = 2.0
        """}, select={"SIM103"})
        assert rules_of(result) == ["SIM103"]
        assert "dataclasses.replace" in result.violations[0].message

    def test_setattr_and_dict_writes_are_caught(self):
        result = run({"src/pkg/tune.py": """
            class RunConfig:
                def __init__(self, scale: float):
                    self.scale = scale

            def sneak(config: RunConfig):
                setattr(config, "scale", 2.0)
                config.__dict__["scale"] = 3.0
        """}, select={"SIM103"})
        vias = sorted(v.message.split(" mutates")[0]
                      for v in result.violations)
        assert len(result.violations) == 2
        assert vias == ["__dict__ write", "setattr()"]

    def test_construction_in_the_config_class_is_exempt(self):
        result = run({"src/pkg/tune.py": """
            class RunConfig:
                def __init__(self, scale: float):
                    self.scale = scale
                    object.__setattr__(self, "frozen", True)
        """}, select={"SIM103"})
        assert rules_of(result) == []

    def test_constructor_call_receiver_is_flagged(self):
        result = run({"src/pkg/tune.py": """
            class RunConfig:
                def __init__(self):
                    self.scale = 1.0

            def fresh_then_mutated():
                config = RunConfig()
                config.scale = 2.0
                return config
        """}, select={"SIM103"})
        assert rules_of(result) == ["SIM103"]


class TestDeadCounters:
    def test_invariant_referencing_unknown_counter_is_flagged(self):
        result = run({"src/pkg/obs.py": """
            class CacheStats:
                hits: int = 0

            def wire(registry):
                registry.expect_sum(
                    "totals", ["live.hits", "live.ghost_counter"], "sum")
        """}, select={"SIM104"})
        assert rules_of(result) == ["SIM104"]
        assert "ghost_counter" in result.violations[0].message

    def test_class_scoped_starved_counter_is_flagged(self):
        result = run({"src/pkg/stats.py": """
            class FedStats:
                evictions: int = 0

            class StarvedStats:
                evictions: int = 0

            class Fed:
                def __init__(self):
                    self.stats = FedStats()

                def evict(self):
                    self.stats.evictions += 1
        """}, select={"SIM104"})
        assert rules_of(result) == ["SIM104"]
        assert "StarvedStats.evictions" in result.violations[0].message

    def test_registry_owned_metrics_satisfy_the_invariant(self):
        result = run({"src/pkg/obs.py": """
            def wire(registry):
                registry.count("live.requests", 1)
                registry.expect_sum("totals", ["live.requests"], "sum")
        """}, select={"SIM104"})
        assert rules_of(result) == []


class TestOptProvenance:
    def test_fresh_literal_opt_number_is_flagged(self):
        result = run({
            "src/repro/caches/policy.py": """
                class Policy:
                    def insert(self, tag, opt_number):
                        return (tag, opt_number)
            """,
            "src/repro/tcor/feed.py": """
                from repro.caches.policy import Policy

                def feed(policy: Policy):
                    policy.insert("t", 7)
            """,
        }, select={"SIM105"})
        assert rules_of(result) == ["SIM105"]
        assert "opt_number" in result.violations[0].message

    def test_pmd_sourced_and_sentinel_opt_numbers_pass(self):
        result = run({
            "src/repro/caches/policy.py": """
                class Policy:
                    def insert(self, tag, opt_number):
                        return (tag, opt_number)
            """,
            "src/repro/tcor/feed.py": """
                from repro.caches.policy import Policy

                def feed(policy: Policy, pmd):
                    policy.insert("t", pmd.opt_number)
                    policy.insert("t", opt_number=NO_NEXT_USE_RANK)
            """,
        }, select={"SIM105"})
        assert rules_of(result) == []

    def test_keyword_literal_is_flagged_outside_positional_slots(self):
        result = run({
            "src/repro/tcor/feed.py": """
                def rank_line(tag, opt_number=0):
                    return (tag, opt_number)

                def feed():
                    rank_line("t", opt_number=3)
            """,
        }, select={"SIM105"})
        assert rules_of(result) == ["SIM105"]

    def test_calls_outside_tcor_namespaces_are_ignored(self):
        result = run({
            "src/pkg/free.py": """
                def helper(opt_number):
                    return opt_number

                def feed():
                    helper(3)
            """,
        }, select={"SIM105"})
        assert rules_of(result) == []

    def test_replay_kernel_literal_opt_is_flagged(self):
        result = run({
            "src/repro/replay/kernels.py": """
                def attr_read(pid, opt_number):
                    return (pid, opt_number)
            """,
            "src/repro/replay/driver.py": """
                from repro.replay.kernels import attr_read

                def feed():
                    attr_read(0, 7)
            """,
        }, select={"SIM105"})
        assert rules_of(result) == ["SIM105"]
        assert "opt_number" in result.violations[0].message

    def test_replay_trace_array_opt_passes(self):
        # The replay kernels' OPT numbers come from the trace compiler's
        # arrays — loads and the parameters they flow through are
        # legitimate provenance, same as PMD fields on the live path.
        result = run({
            "src/repro/replay/kernels.py": """
                def attr_read(pid, opt_number):
                    return (pid, opt_number)

                def replay(frame):
                    for index in frame.order:
                        opt = frame.fr_opt[index]
                        attr_read(frame.fr_pid[index], opt)
            """,
        }, select={"SIM105"})
        assert rules_of(result) == []
