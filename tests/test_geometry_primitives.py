"""Primitives, vertices and bounding boxes."""

import pytest

from repro.geometry.primitives import Attribute, BoundingBox, Primitive, Vertex
from tests.conftest import make_triangle


class TestBoundingBox:
    def test_dimensions(self):
        box = BoundingBox(1, 2, 4, 8)
        assert box.width == 3
        assert box.height == 6

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(5, 0, 1, 1)

    def test_intersection_cases(self):
        a = BoundingBox(0, 0, 10, 10)
        assert a.intersects(BoundingBox(5, 5, 15, 15))
        assert a.intersects(BoundingBox(10, 10, 20, 20))  # touching corner
        assert not a.intersects(BoundingBox(11, 0, 20, 10))
        assert not a.intersects(BoundingBox(0, 11, 10, 20))


class TestPrimitive:
    def test_bounding_box(self):
        prim = make_triangle(0, 10.0, 20.0, size=5.0)
        box = prim.bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (10, 20, 15, 25)

    def test_signed_area_orientation(self):
        ccw = Primitive(0, Vertex(0, 0), Vertex(10, 0), Vertex(0, 10))
        cw = Primitive(1, Vertex(0, 0), Vertex(0, 10), Vertex(10, 0))
        assert ccw.signed_area() > 0
        assert cw.signed_area() < 0
        assert abs(ccw.signed_area()) == abs(cw.signed_area()) == 100

    def test_degenerate_detection(self):
        line = Primitive(0, Vertex(0, 0), Vertex(5, 5), Vertex(10, 10))
        assert line.is_degenerate()
        assert not make_triangle(0, 0, 0).is_degenerate()

    def test_attribute_count_must_fit_pmd_field(self):
        with pytest.raises(ValueError):
            make_triangle(0, 0, 0, num_attributes=16)
        with pytest.raises(ValueError):
            make_triangle(0, 0, 0, num_attributes=0)

    def test_attributes_are_identified_by_slot(self):
        prim = make_triangle(7, 0, 0, num_attributes=3)
        assert prim.attributes == (
            Attribute(7, 0), Attribute(7, 1), Attribute(7, 2))

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Primitive(-1, Vertex(0, 0), Vertex(1, 0), Vertex(0, 1))
