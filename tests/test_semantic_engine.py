"""Semantic engine: two-tier caching, SARIF output, baseline mode, CLI.

The cache assertions use the hit/miss counters carried on
:class:`LintResult` — the same numbers the acceptance criterion "a warm
second run reuses cached facts for unchanged modules" is stated in.
"""

from __future__ import annotations

import json
from textwrap import dedent

import pytest

from repro.lint import lint_paths
from repro.lint.cli import main
from repro.lint.engine import (apply_baseline, load_baseline,
                               write_baseline)
from repro.lint.reporters import sarif_payload
from repro.lint.semantic.rules import semantic_rules

CLEAN_APP = """
    from proj.util import double

    def run(value):
        return double(value)
"""
CLEAN_UTIL = """
    def double(value):
        return value * 2
"""
DIRTY_POOL = """
    from concurrent.futures import ProcessPoolExecutor

    STATE = 0

    def worker(n):
        global STATE
        STATE += n
        return n

    def fan_out(jobs):
        with ProcessPoolExecutor() as pool:
            return [pool.submit(worker, job) for job in jobs]
"""


def write_project(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(source))
    return tmp_path


@pytest.fixture
def clean_project(tmp_path):
    return write_project(tmp_path, {
        "src/proj/__init__.py": "",
        "src/proj/app.py": CLEAN_APP,
        "src/proj/util.py": CLEAN_UTIL,
    })


class TestSemanticCache:
    def test_warm_run_reuses_facts_and_findings(self, clean_project):
        root = clean_project
        cold = lint_paths([str(root / "src")], root=root, semantic=True)
        warm = lint_paths([str(root / "src")], root=root, semantic=True)
        assert cold.semantic_facts_computed == 3
        assert cold.semantic_facts_from_cache == 0
        assert warm.semantic_facts_from_cache == 3
        assert warm.semantic_facts_computed == 0
        assert warm.semantic_findings_from_cache == 3
        assert warm.semantic_findings_computed == 0

    def test_editing_a_module_invalidates_only_its_dependents(
            self, clean_project):
        root = clean_project
        lint_paths([str(root / "src")], root=root, semantic=True)
        util = root / "src/proj/util.py"
        util.write_text(util.read_text() + "\nEXTRA = 1\n")
        warm = lint_paths([str(root / "src")], root=root, semantic=True)
        # Facts: only the edited file re-extracts.
        assert warm.semantic_facts_from_cache == 2
        assert warm.semantic_facts_computed == 1
        # Findings: util itself and its importer app recompute;
        # __init__ (no dependency on util) replays.
        assert warm.semantic_findings_computed == 2
        assert warm.semantic_findings_from_cache == 1

    def test_semantic_cache_is_a_separate_file(self, clean_project):
        root = clean_project
        lint_paths([str(root / "src")], root=root, semantic=True)
        assert (root / ".lint-semantic-cache.json").is_file()
        payload = json.loads(
            (root / ".lint-semantic-cache.json").read_text())
        assert set(payload) >= {"version", "signature", "facts",
                                "findings"}

    def test_cached_findings_replay_identically(self, tmp_path):
        root = write_project(tmp_path, {"src/pool.py": DIRTY_POOL})
        cold = lint_paths([str(root / "src")], root=root, semantic=True)
        warm = lint_paths([str(root / "src")], root=root, semantic=True)
        assert warm.semantic_findings_from_cache == 1
        assert [v.format() for v in warm.violations] \
            == [v.format() for v in cold.violations]
        assert any(v.rule == "SIM101" for v in warm.violations)


class TestSarif:
    def test_payload_has_the_schema_required_fields(self, tmp_path):
        root = write_project(tmp_path, {"src/pool.py": DIRTY_POOL})
        result = lint_paths([str(root / "src")], root=root,
                            use_cache=False, semantic=True)
        payload = sarif_payload(result)
        # sarifLog required: version + runs; $schema pins 2.1.0.
        assert payload["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in payload["$schema"]
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]  # run requires tool.driver.name
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"SIM001", "SIM101", "SIM105"} <= rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
        assert run["results"], "the dirty fixture must produce results"
        for entry in run["results"]:
            # result requires message; ruleId/locations make GitHub
            # code scanning render it usefully.
            assert entry["message"]["text"]
            assert entry["ruleId"] in rule_ids
            location = entry["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(".py")
            assert location["region"]["startLine"] >= 1
            assert location["region"]["startColumn"] >= 1

    def test_cli_emits_parseable_sarif(self, tmp_path, capsys):
        root = write_project(tmp_path, {"src/ok.py": CLEAN_UTIL})
        status = main(["--format", "sarif", "--no-cache",
                       str(root / "src")])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["runs"][0]["results"] == []


class TestBaseline:
    def test_baselined_findings_do_not_fail_but_new_ones_do(
            self, tmp_path, capsys):
        root = write_project(tmp_path, {"src/pool.py": DIRTY_POOL})
        baseline = root / ".lint-baseline.json"
        status = main(["--no-cache", "--semantic", "--update-baseline",
                       str(baseline), str(root / "src")])
        assert status == 0
        assert "recorded 1 finding" in capsys.readouterr().out

        # Same findings: accepted.
        status = main(["--no-cache", "--semantic", "--baseline",
                       str(baseline), str(root / "src")])
        out = capsys.readouterr().out
        assert status == 0
        assert "suppressed 1 known finding" in out

        # A fresh violation in another file still fails the run.
        (root / "src/fresh.py").write_text(
            "import random\nPICK = random.randint(0, 3)\n")
        status = main(["--no-cache", "--semantic", "--baseline",
                       str(baseline), str(root / "src")])
        out = capsys.readouterr().out
        assert status == 1
        assert "SIM001" in out
        assert "pool.py" not in out

    def test_matching_ignores_line_drift(self, tmp_path):
        root = write_project(tmp_path, {"src/pool.py": DIRTY_POOL})
        result = lint_paths([str(root / "src")], root=root,
                            use_cache=False, semantic=False)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(result, baseline_file)
        # Shift every finding by prepending a comment line.
        pool = root / "src/pool.py"
        pool.write_text("# a new leading comment\n" + pool.read_text())
        shifted = lint_paths([str(root / "src")], root=root,
                             use_cache=False, semantic=False)
        new, matched = apply_baseline(
            shifted, load_baseline(baseline_file))
        assert new == []
        assert matched == len(shifted.violations)

    def test_missing_baseline_means_everything_is_new(self, tmp_path):
        root = write_project(tmp_path, {"src/pool.py": DIRTY_POOL})
        result = lint_paths([str(root / "src")], root=root,
                            use_cache=False, semantic=True)
        new, matched = apply_baseline(
            result, load_baseline(tmp_path / "absent.json"))
        assert matched == 0
        assert len(new) == len(result.violations)


class TestCli:
    def test_semantic_codes_are_known_to_select_and_ignore(
            self, tmp_path, capsys):
        root = write_project(tmp_path, {"src/pool.py": DIRTY_POOL})
        status = main(["--no-cache", "--semantic", "--select", "SIM101",
                       str(root / "src")])
        out = capsys.readouterr().out
        assert status == 1
        assert "SIM101" in out

        status = main(["--no-cache", "--semantic", "--ignore", "SIM101",
                       str(root / "src")])
        capsys.readouterr()
        assert status == 0

    def test_unknown_code_is_still_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["--select", "SIM999", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_list_rules_includes_the_semantic_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in semantic_rules():
            assert rule.code in out


class TestSemanticRegistry:
    def test_all_families_with_stable_codes(self):
        codes = [rule.code for rule in semantic_rules()]
        assert codes == ["SIM101", "SIM102", "SIM103", "SIM104", "SIM105",
                         "SIM201", "SIM202", "SIM203", "SIM204", "SIM205",
                         "SIM206",
                         "SIM301", "SIM302", "SIM303", "SIM304",
                         "SIM305"]

    def test_scopes_partition_cacheable_from_global(self):
        scopes = {rule.code: rule.scope for rule in semantic_rules()}
        assert scopes["SIM101"] == "module"
        assert scopes["SIM103"] == "module"
        assert scopes["SIM105"] == "module"
        assert scopes["SIM102"] == "program"
        assert scopes["SIM104"] == "program"
