"""Tile Fetcher throughput model."""

import pytest

from repro.timing import tile_fetcher_throughput
from repro.timing.tiling_timing import ThroughputResult


@pytest.fixture(scope="module")
def throughputs(tiny_workload):
    return {
        "baseline": tile_fetcher_throughput(tiny_workload, "baseline"),
        "tcor": tile_fetcher_throughput(tiny_workload, "tcor"),
    }


class TestBasics:
    def test_rejects_unknown_system(self, tiny_workload):
        with pytest.raises(ValueError):
            tile_fetcher_throughput(tiny_workload, "magic")

    def test_all_primitive_reads_delivered(self, throughputs, tiny_workload):
        expected = tiny_workload.traces[0].num_primitive_reads
        for result in throughputs.values():
            assert result.primitives_delivered == expected

    def test_ppc_bounded_by_one(self, throughputs):
        for result in throughputs.values():
            assert 0 < result.primitives_per_cycle <= 1.0

    def test_cycles_at_least_deliveries(self, throughputs):
        for result in throughputs.values():
            assert result.cycles >= result.primitives_delivered

    def test_mshr_peak_within_file_size(self, throughputs):
        from repro.config import DEFAULT_GPU
        for result in throughputs.values():
            assert result.mshr_peak <= DEFAULT_GPU.tiling.mshr_entries


class TestPaperShape:
    def test_tcor_faster_than_baseline(self, throughputs):
        assert throughputs["tcor"].primitives_per_cycle > \
            throughputs["baseline"].primitives_per_cycle

    def test_speedup_single_digit_factor(self, throughputs):
        speedup = (throughputs["tcor"].primitives_per_cycle
                   / throughputs["baseline"].primitives_per_cycle)
        assert 1.2 < speedup < 50

    def test_deterministic(self, tiny_workload, throughputs):
        again = tile_fetcher_throughput(tiny_workload, "tcor")
        assert again.cycles == throughputs["tcor"].cycles


class TestResultType:
    def test_zero_cycles_guard(self):
        result = ThroughputResult("x", "y", 0, 0, 0, 0)
        assert result.primitives_per_cycle == 0.0
