"""The six SIM2xx concurrency rules, on fixture projects.

Same harness as ``test_semantic_rules.py``: each fixture is a
``{path: source}`` dict fed to :func:`semantic_pass` with caching off,
so extraction, rule scoping, suppressions and message text are all
exercised end to end.  Every rule gets a triggering fixture (the
acceptance criterion) and the negatives that define its edges.
"""

from __future__ import annotations

from textwrap import dedent

from repro.lint.semantic.engine import semantic_pass


def run(sources: dict[str, str], select: set[str] | None = None):
    dedented = {path: dedent(source) for path, source in sources.items()}
    return semantic_pass(dedented, select=select)


def rules_of(result) -> list[str]:
    return [violation.rule for violation in result.violations]


class TestBlockingCall:
    def test_direct_blocking_call_in_a_coroutine(self):
        result = run({"src/app/srv.py": """
            import time

            async def handler(payload):
                time.sleep(0.1)
                return payload
        """}, select={"SIM201"})
        assert rules_of(result) == ["SIM201"]
        assert "time.sleep" in result.violations[0].message
        assert "handler" in result.violations[0].message

    def test_blocking_call_behind_an_import_alias(self):
        result = run({"src/app/srv.py": """
            import time as clock

            async def handler():
                clock.sleep(0.1)
        """}, select={"SIM201"})
        assert rules_of(result) == ["SIM201"]

    def test_transitive_reach_through_a_sync_helper(self):
        result = run({"src/app/srv.py": """
            def load(path):
                return path.read_text()

            async def handler(path):
                return load(path)
        """}, select={"SIM201"})
        assert rules_of(result) == ["SIM201"]
        message = result.violations[0].message
        assert "load" in message and "read_text" in message
        # Anchored at the root call site inside the coroutine.
        assert result.violations[0].line == 6

    def test_future_result_on_an_executor_future(self):
        result = run({"src/app/srv.py": """
            async def handler(pool, fn):
                future = pool.submit(fn)
                return future.result()
        """}, select={"SIM201"})
        assert rules_of(result) == ["SIM201"]
        assert "future.result" in result.violations[0].message

    def test_awaited_and_dispatched_calls_are_clean(self):
        result = run({"src/app/srv.py": """
            import asyncio
            import time

            async def handler(loop):
                await asyncio.sleep(0.1)
                await loop.run_in_executor(None, time.sleep, 0.1)
                await asyncio.to_thread(time.sleep, 0.1)
        """}, select={"SIM201"})
        assert rules_of(result) == []

    def test_sync_functions_and_generators_are_not_roots(self):
        result = run({"src/app/srv.py": """
            import time

            def plain():
                time.sleep(0.1)

            async def pages(fetch):
                while True:
                    yield fetch()

            async def handler(fetch):
                return [page async for page in pages(fetch)]
        """}, select={"SIM201"})
        assert rules_of(result) == []


class TestAtomicity:
    REGISTRY = """
        class Registry:
            def __init__(self):
                self.jobs = {}

            async def admit(self, key, probe):
                pending = self.jobs.get(key)
                fresh = await probe(key)
                self.jobs[key] = pending or fresh
                return self.jobs[key]
    """

    def test_read_await_write_on_a_dict_attribute(self):
        result = run({"src/app/reg.py": self.REGISTRY},
                     select={"SIM202"})
        assert rules_of(result) == ["SIM202"]
        message = result.violations[0].message
        assert "self.jobs" in message and "dict" in message
        assert "suspension point" in message
        # Anchored at the write that commits the stale decision.
        assert result.violations[0].line == 9

    def test_counter_attribute_split_across_await(self):
        result = run({"src/app/reg.py": """
            class Gauge:
                def __init__(self):
                    self.active = 0

                async def track(self, work):
                    before = self.active
                    await work()
                    self.active = before + 1
        """}, select={"SIM202"})
        assert rules_of(result) == ["SIM202"]

    def test_asyncio_lock_span_exonerates_the_gap(self):
        result = run({"src/app/reg.py": """
            import asyncio

            class Registry:
                def __init__(self):
                    self.jobs = {}
                    self._lock = asyncio.Lock()

                async def admit(self, key, probe):
                    async with self._lock:
                        pending = self.jobs.get(key)
                        fresh = await probe(key)
                        self.jobs[key] = pending or fresh
        """}, select={"SIM202"})
        assert rules_of(result) == []

    def test_event_flags_and_untyped_attrs_stay_silent(self):
        # Waking on an Event and clearing it afterwards is the
        # protocol, not a race; untyped attributes are unknowable.
        result = run({"src/app/reg.py": """
            import asyncio

            class Loop:
                def __init__(self, thing):
                    self._wake = asyncio.Event()
                    self.handle = thing

                async def spin(self, step):
                    await self._wake.wait()
                    self._wake.clear()
                    handle = self.handle
                    await step(handle)
                    self.handle = handle
        """}, select={"SIM202"})
        assert rules_of(result) == []

    def test_single_statement_rmw_is_atomic_on_the_loop(self):
        result = run({"src/app/reg.py": """
            class Gauge:
                def __init__(self):
                    self.active = 0

                async def track(self, work):
                    self.active += 1
                    await work()
                    self.active -= 1
        """}, select={"SIM202"})
        assert rules_of(result) == []

    def test_suppression_comment_silences_the_write_line(self, tmp_path):
        # Suppressions are the engine layer's job, so this one goes
        # through lint_paths like real runs do.
        from repro.lint import lint_paths
        module = tmp_path / "src" / "reg.py"
        module.parent.mkdir(parents=True)
        module.write_text(dedent(self.REGISTRY).replace(
            "self.jobs[key] = pending or fresh",
            "self.jobs[key] = pending or fresh"
            "  # lint: disable=SIM202"))
        result = lint_paths([str(tmp_path / "src")], root=tmp_path,
                            use_cache=False, semantic=True)
        assert [v for v in result.violations if v.rule == "SIM202"] == []


class TestTaskLifecycle:
    def test_dropped_create_task_is_fire_and_forget(self):
        result = run({"src/app/bg.py": """
            import asyncio

            async def kick(coro):
                asyncio.create_task(coro)
        """}, select={"SIM203"})
        assert rules_of(result) == ["SIM203"]
        assert "weak" in result.violations[0].message

    def test_task_bound_to_a_dead_local_is_flagged(self):
        result = run({"src/app/bg.py": """
            import asyncio

            async def kick(coro):
                task = asyncio.create_task(coro)
                return None
        """}, select={"SIM203"})
        assert rules_of(result) == ["SIM203"]
        assert "`task`" in result.violations[0].message

    def test_awaited_stored_and_gathered_tasks_are_kept(self):
        result = run({"src/app/bg.py": """
            import asyncio

            class Runner:
                async def all_sinks(self, coro, other):
                    task = asyncio.create_task(coro)
                    await task
                    self._watchdog = asyncio.ensure_future(other)
                    return await asyncio.gather(
                        asyncio.create_task(other))
        """}, select={"SIM203"})
        assert rules_of(result) == []

    def test_discarded_coroutine_call_never_runs(self):
        result = run({"src/app/bg.py": """
            async def cleanup(handle):
                handle.close()

            async def shutdown(handle):
                cleanup(handle)
        """}, select={"SIM204"})
        assert rules_of(result) == ["SIM204"]
        message = result.violations[0].message
        assert "cleanup" in message and "never executes" in message

    def test_awaited_and_scheduled_coroutines_are_clean(self):
        result = run({"src/app/bg.py": """
            import asyncio

            async def cleanup(handle):
                handle.close()

            async def shutdown(handle):
                await cleanup(handle)
                return asyncio.create_task(cleanup(handle))
        """}, select={"SIM204"})
        assert rules_of(result) == []


class TestLockDiscipline:
    def test_thread_lock_with_block_inside_a_coroutine(self):
        result = run({"src/app/box.py": """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                async def put(self, item):
                    with self._lock:
                        self.items.append(item)
        """}, select={"SIM205"})
        assert rules_of(result) == ["SIM205"]
        message = result.violations[0].message
        assert "threading.Lock" in message
        assert "event loop" in message

    def test_thread_lock_acquire_call_inside_a_coroutine(self):
        result = run({"src/app/box.py": """
            import threading

            class Box:
                def __init__(self):
                    self._guard = threading.RLock()

                async def poke(self):
                    self._guard.acquire()
        """}, select={"SIM205"})
        assert rules_of(result) == ["SIM205"]
        assert "threading.RLock" in result.violations[0].message

    def test_asyncio_lock_held_across_an_executor_hop(self):
        result = run({"src/app/box.py": """
            import asyncio

            class Box:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def flush(self, loop, write):
                    async with self._lock:
                        await loop.run_in_executor(None, write)
        """}, select={"SIM205"})
        assert rules_of(result) == ["SIM205"]
        message = result.violations[0].message
        assert "run_in_executor" in message and "self._lock" in message

    def test_asyncio_lock_used_on_loop_only_is_the_good_pattern(self):
        result = run({"src/app/box.py": """
            import asyncio

            class Box:
                def __init__(self):
                    self._lock = asyncio.Lock()
                    self.items = []

                async def put(self, item, loop, write):
                    async with self._lock:
                        self.items.append(item)
                    await loop.run_in_executor(None, write)
        """}, select={"SIM205"})
        assert rules_of(result) == []

    def test_thread_lock_in_a_sync_method_is_fine(self):
        result = run({"src/app/box.py": """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def put(self, item):
                    with self._lock:
                        self.items.append(item)
        """}, select={"SIM205"})
        assert rules_of(result) == []


class TestObsBoundary:
    def test_thread_dispatch_writing_hook_state(self):
        result = run({"src/app/hooks.py": """
            ACTIVE = None

            def install(tracer):
                global ACTIVE
                ACTIVE = tracer

            async def go(loop, tracer):
                await loop.run_in_executor(None, install, tracer)
        """}, select={"SIM206"})
        assert rules_of(result) == ["SIM206"]
        message = result.violations[0].message
        assert "ACTIVE" in message and "install" in message

    def test_write_reached_through_the_call_graph(self):
        result = run({"src/app/hooks.py": """
            ACTIVE = None

            def _swap(tracer):
                global ACTIVE
                ACTIVE = tracer

            def worker(tracer):
                _swap(tracer)

            async def go(loop, tracer):
                await loop.run_in_executor(None, worker, tracer)
        """}, select={"SIM206"})
        assert rules_of(result) == ["SIM206"]
        assert "call graph" in result.violations[0].message

    def test_process_pool_dispatch_is_exempt(self):
        # A child process mutates its own copy of the module — that
        # hygiene belongs to SIM101, not the loop-boundary rule.
        result = run({"src/app/hooks.py": """
            from concurrent.futures import ProcessPoolExecutor

            ACTIVE = None

            def install(tracer):
                global ACTIVE
                ACTIVE = tracer

            async def go(loop, tracer):
                pool = ProcessPoolExecutor()
                await loop.run_in_executor(pool, install, tracer)
        """}, select={"SIM206"})
        assert rules_of(result) == []

    def test_pure_worker_dispatch_is_clean(self):
        result = run({"src/app/hooks.py": """
            def crunch(n):
                return n * 2

            async def go(loop):
                return await loop.run_in_executor(None, crunch, 21)
        """}, select={"SIM206"})
        assert rules_of(result) == []


class TestFamilyInteraction:
    def test_one_fixture_can_trip_several_families(self):
        # One module, two families: the blocking sleep (SIM201) and the
        # dropped task (SIM203) are found in a single pass.
        result = run({"src/app/mixed.py": """
            import asyncio
            import time

            async def handler(coro):
                time.sleep(0.1)
                asyncio.create_task(coro)
        """})
        assert set(rules_of(result)) == {"SIM201", "SIM203"}

    def test_select_scopes_to_one_concurrency_rule(self):
        result = run({"src/app/mixed.py": """
            import asyncio
            import time

            async def handler(coro):
                time.sleep(0.1)
                asyncio.create_task(coro)
        """}, select={"SIM203"})
        assert rules_of(result) == ["SIM203"]
