"""MSHR file and the generic two-level hierarchy."""

import pytest

from repro.caches.hierarchy import CacheHierarchy, MemoryCounters, SharedL2
from repro.caches.line import LineMeta
from repro.caches.mshr import MSHRFile
from repro.caches.policies import make_policy
from repro.caches.set_assoc import SetAssociativeCache


class TestMSHR:
    def test_allocate_and_retire(self):
        mshr = MSHRFile(entries=2)
        mshr.allocate(10, ready_cycle=5)
        mshr.allocate(11, ready_cycle=8)
        assert mshr.full
        assert mshr.earliest_ready() == 5
        done = mshr.retire_ready(6)
        assert [entry.line_address for entry in done] == [10]
        assert not mshr.full

    def test_secondary_miss_merges(self):
        mshr = MSHRFile(entries=1)
        first = mshr.allocate(10, ready_cycle=5)
        second = mshr.allocate(10, ready_cycle=9)
        assert first is second
        assert second.merged_requests == 2
        assert mshr.merges == 1

    def test_overflow_raises(self):
        mshr = MSHRFile(entries=1)
        mshr.allocate(1, 5)
        with pytest.raises(RuntimeError):
            mshr.allocate(2, 5)

    def test_peak_tracking(self):
        mshr = MSHRFile(entries=4)
        for address in range(3):
            mshr.allocate(address, 10)
        assert mshr.peak_occupancy == 3

    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(entries=0)


def build_hierarchy(l1_sets=2, l1_ways=1, l2_sets=8, l2_ways=2):
    l1 = SetAssociativeCache(l1_sets, l1_ways, 64, make_policy("lru"))
    l2 = SetAssociativeCache(l2_sets, l2_ways, 64, make_policy("lru"))
    return CacheHierarchy(l1, SharedL2(l2, MemoryCounters()))


class TestHierarchy:
    def test_l1_hit_touches_nothing_below(self):
        hierarchy = build_hierarchy()
        hierarchy.access(0)
        outcome = hierarchy.access(0)
        assert outcome.l1_hit
        assert outcome.l2_reads == outcome.memory_reads == 0

    def test_read_miss_fills_through_both_levels(self):
        hierarchy = build_hierarchy()
        outcome = hierarchy.access(0)
        assert not outcome.l1_hit
        assert outcome.l2_reads == 1
        assert outcome.memory_reads == 1

    def test_second_l1_miss_hits_l2(self):
        hierarchy = build_hierarchy(l1_sets=1, l1_ways=1)
        hierarchy.access(0)
        hierarchy.access(64)   # evicts line 0 from L1; L2 still has it
        outcome = hierarchy.access(0)
        assert outcome.l2_reads == 1
        assert outcome.memory_reads == 0

    def test_dirty_l1_eviction_writes_into_l2(self):
        hierarchy = build_hierarchy(l1_sets=1, l1_ways=1)
        hierarchy.access(0, is_write=True)
        outcome = hierarchy.access(64)
        assert outcome.l2_writes == 1
        # The L2 write-allocates without fetching: no memory read for it.
        assert outcome.memory_reads == 1  # only the demand fill of line 1

    def test_l1_write_miss_fetches_from_l2_but_not_memory(self):
        # The generic hierarchy write-allocates at the L1 (the fill is an
        # L2 read) while the L2 itself allocates write misses without a
        # memory fetch — so the fill's L2 miss is the only memory read.
        hierarchy = build_hierarchy()
        outcome = hierarchy.access(0, is_write=True)
        assert outcome.l2_reads == 1
        assert outcome.memory_reads == 1
        assert outcome.memory_writes == 0

    def test_l2_dirty_eviction_reaches_memory(self):
        # 1-set, 1-way L2: every new line evicts the previous one.
        l1 = SetAssociativeCache(1, 1, 64, make_policy("lru"))
        shared = SharedL2(SetAssociativeCache(1, 1, 64, make_policy("lru")),
                          MemoryCounters())
        hierarchy = CacheHierarchy(l1, shared)
        hierarchy.access(0, is_write=True)
        hierarchy.access(64)   # L1 evicts dirty 0 -> L2 write (allocates)
        outcome = hierarchy.access(128)  # L1 evicts clean 64; no L2 write
        assert shared.memory.writes >= 1

    def test_flush_l1_pushes_dirty_lines_down(self):
        hierarchy = build_hierarchy()
        hierarchy.access(0, is_write=True,
                         meta=LineMeta(region=1))
        l2_writes, _reads, _writes = hierarchy.flush_l1()
        assert l2_writes == 1

    def test_shared_l2_flush_writes_back(self):
        shared = SharedL2(SetAssociativeCache(4, 2, 64, make_policy("lru")),
                          MemoryCounters())
        shared.access(0, is_write=True)
        assert shared.flush() == 1
        assert shared.memory.writes == 1

    def test_region_accounting(self):
        hierarchy = build_hierarchy()
        hierarchy.access(0, meta=LineMeta(region=3))
        assert hierarchy.memory.region_reads(3) == 1
        assert hierarchy.memory.region_accesses(3) == 1
