"""Early vs Late vs disabled depth testing in the pipeline."""

import numpy as np
import pytest

from repro.config import ScreenConfig
from repro.geometry.primitives import Primitive, Vertex
from repro.geometry.scene import Scene
from repro.pbuffer.builder import build_parameter_buffer
from repro.raster.pipeline import RasterPipeline
from repro.raster.zbuffer import DepthTest

SCREEN = ScreenConfig(64, 64, 32)


def occluded_scene() -> Scene:
    """A near triangle drawn before a coplanar-overlapping far one."""
    return Scene(SCREEN, [
        Primitive(0, Vertex(4, 4, 0.2), Vertex(40, 4, 0.2),
                  Vertex(4, 40, 0.2)),
        Primitive(1, Vertex(4, 4, 0.8), Vertex(40, 4, 0.8),
                  Vertex(4, 40, 0.8)),
    ])


def run(depth_test: DepthTest) -> RasterPipeline:
    pipeline = RasterPipeline(build_parameter_buffer(occluded_scene()),
                              depth_test=depth_test)
    pipeline.render()
    return pipeline


def test_early_z_shades_fewer_fragments_than_late():
    early = run(DepthTest.EARLY)
    late = run(DepthTest.LATE)
    assert early.stats.fragments_shaded < late.stats.fragments_shaded
    # Late Z shades everything the rasterizer produced.
    assert late.stats.fragments_shaded == pytest.approx(
        2 * early.stats.fragments_shaded, rel=0.05)


def test_early_and_late_produce_the_same_image():
    assert np.array_equal(run(DepthTest.EARLY).framebuffer,
                          run(DepthTest.LATE).framebuffer)


def test_disabled_depth_is_painters_order():
    disabled = run(DepthTest.DISABLED)
    early = run(DepthTest.EARLY)
    # With the test disabled, the later (far) triangle wins the pixels;
    # with it enabled, the nearer (first) one does.
    assert not np.array_equal(disabled.framebuffer, early.framebuffer)
