"""Synthetic scene generation: calibration and statistics."""

import pytest

from repro.config import ScreenConfig
from repro.geometry.generator import (
    SceneGenerator,
    SceneParameters,
    calibrate_extent_for_reuse,
)


@pytest.fixture(scope="module")
def screen() -> ScreenConfig:
    return ScreenConfig()  # paper screen: enough tiles for calibration


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            SceneParameters(num_primitives=0, target_reuse=2.0)
        with pytest.raises(ValueError):
            SceneParameters(num_primitives=10, target_reuse=0.5)
        with pytest.raises(ValueError):
            SceneParameters(num_primitives=10, target_reuse=2.0,
                            mean_attributes=20)
        with pytest.raises(ValueError):
            SceneParameters(num_primitives=10, target_reuse=2.0,
                            coverage_fraction=0.01)


class TestCalibration:
    def test_extent_monotonic_in_reuse(self, screen):
        small = calibrate_extent_for_reuse(screen, 1.5, samples=80)
        large = calibrate_extent_for_reuse(screen, 6.0, samples=80)
        assert small < large

    def test_rejects_sub_unit_reuse(self, screen):
        with pytest.raises(ValueError):
            calibrate_extent_for_reuse(screen, 0.9)


class TestGeneration:
    @pytest.mark.parametrize("target", [1.5, 3.6, 6.9])
    def test_measured_reuse_near_target(self, screen, target):
        params = SceneParameters(num_primitives=400, target_reuse=target,
                                 seed=3)
        scene = SceneGenerator(screen, params).generate()
        assert scene.average_reuse() == pytest.approx(target, rel=0.15)

    def test_primitive_count_and_ids(self, screen):
        params = SceneParameters(num_primitives=100, target_reuse=2.0, seed=1)
        scene = SceneGenerator(screen, params).generate()
        assert len(scene) == 100
        assert [p.primitive_id for p in scene.primitives] == list(range(100))

    def test_deterministic_for_same_seed(self, screen):
        params = SceneParameters(num_primitives=50, target_reuse=2.0, seed=9)
        a = SceneGenerator(screen, params).generate()
        b = SceneGenerator(screen, params).generate()
        assert [p.v0 for p in a.primitives] == [p.v0 for p in b.primitives]

    def test_frames_differ_but_share_statistics(self, screen):
        params = SceneParameters(num_primitives=300, target_reuse=3.0, seed=5)
        generator = SceneGenerator(screen, params)
        frame0 = generator.generate(0)
        frame1 = generator.generate(1)
        assert [p.v0 for p in frame0.primitives] != \
            [p.v0 for p in frame1.primitives]
        assert frame0.average_reuse() == \
            pytest.approx(frame1.average_reuse(), rel=0.25)

    def test_mean_attributes_honored(self, screen):
        params = SceneParameters(num_primitives=400, target_reuse=2.0,
                                 mean_attributes=4.0, seed=2)
        scene = SceneGenerator(screen, params).generate()
        assert scene.average_attributes() == pytest.approx(4.0, abs=0.4)

    def test_coverage_fraction_concentrates_geometry(self, screen):
        def occupied_tiles(coverage):
            params = SceneParameters(num_primitives=500, target_reuse=2.0,
                                     coverage_fraction=coverage, seed=4)
            scene = SceneGenerator(screen, params).generate()
            return sum(1 for lst in scene.tile_lists() if lst)

        assert occupied_tiles(0.3) < occupied_tiles(1.0)

    def test_all_primitives_on_screen(self, screen):
        params = SceneParameters(num_primitives=200, target_reuse=1.5, seed=7)
        scene = SceneGenerator(screen, params).generate()
        visible = sum(1 for tiles in scene.coverage() if tiles)
        assert visible == len(scene)  # centers are clamped inside
