"""Property-based tests on geometry, layouts and the Parameter Buffer."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.config import ScreenConfig
from repro.geometry.overlap import tile_rect, tiles_overlapped_by
from repro.geometry.primitives import Primitive, Vertex
from repro.geometry.scene import Scene
from repro.geometry.traversal import TraversalOrder, tile_traversal
from repro.pbuffer.builder import build_parameter_buffer
from repro.pbuffer.layout import (
    ContiguousPBListsLayout,
    InterleavedPBListsLayout,
)
from repro.pbuffer.pmd import NO_NEXT_TILE, TcorPMD, decode_tcor_pmd

SCREEN = ScreenConfig(160, 96, 32)  # 5x3 tiles

coords = st.floats(min_value=-50, max_value=210, allow_nan=False,
                   allow_infinity=False)


@st.composite
def triangles(draw, prim_id=0):
    return Primitive(
        prim_id,
        Vertex(draw(coords), draw(coords)),
        Vertex(draw(coords), draw(coords)),
        Vertex(draw(coords), draw(coords)),
        num_attributes=draw(st.integers(min_value=1, max_value=15)),
    )


@given(prim=triangles())
@settings(max_examples=120, deadline=None)
def test_coverage_subset_of_bbox_tiles(prim):
    """Exact binning never includes a tile the bounding box excludes."""
    covered = set(tiles_overlapped_by(prim, SCREEN))
    bbox = prim.bounding_box()
    for tile in covered:
        rect = tile_rect(SCREEN, tile)
        assert bbox.intersects(rect)


@given(prim=triangles())
@settings(max_examples=120, deadline=None)
def test_vertex_tiles_always_covered(prim):
    """A tile containing an on-screen vertex is always in the coverage."""
    covered = set(tiles_overlapped_by(prim, SCREEN))
    for vertex in prim.vertices:
        if 0 <= vertex.x < SCREEN.width and 0 <= vertex.y < SCREEN.height:
            assert SCREEN.tile_of_pixel(int(vertex.x), int(vertex.y)) \
                in covered


@st.composite
def scenes(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    prims = [draw(triangles(prim_id=index)) for index in range(count)]
    return Scene(SCREEN, prims)


@given(scene=scenes(),
       order=st.sampled_from(list(TraversalOrder)))
@settings(max_examples=60, deadline=None)
def test_parameter_buffer_invariants(scene, order):
    pb = build_parameter_buffer(scene, order)
    # 1. PMDs partition: one slot per (tile, primitive) coverage pair.
    assert pb.total_pmds() == sum(len(t) for t in scene.coverage())
    # 2. Per-tile positions are dense and in binning (program) order.
    for tile_list in pb.tile_lists:
        assert [slot.position for slot in tile_list] == \
            list(range(len(tile_list)))
        prims = [slot.pmd.primitive_id for slot in tile_list]
        assert prims == sorted(prims)
    # 3. OPT Numbers chain through each primitive's use ranks.
    for record, slots in zip(pb.records, pb.slots_by_primitive):
        ranks = sorted(pb.rank_of_tile[slot.tile_id] for slot in slots)
        assert tuple(ranks) == record.use_ranks
        for slot in slots:
            current = pb.rank_of_tile[slot.tile_id]
            future = [r for r in ranks if r > current]
            expected = future[0] if future else NO_NEXT_TILE
            assert slot.pmd.opt_number == expected
    # 4. Every PMD encodes and decodes losslessly.
    for tile_list in pb.tile_lists:
        for slot in tile_list:
            assert decode_tcor_pmd(slot.pmd.encode()) == slot.pmd


@given(num_tiles=st.integers(min_value=1, max_value=64),
       tile=st.integers(min_value=0, max_value=63),
       position=st.integers(min_value=0, max_value=1023))
@settings(max_examples=120, deadline=None)
def test_layouts_agree_on_ownership(num_tiles, tile, position):
    """Both layouts place each PMD in a block owned by its tile."""
    if tile >= num_tiles:
        tile %= num_tiles
    for layout_cls in (ContiguousPBListsLayout, InterleavedPBListsLayout):
        layout = layout_cls(num_tiles)
        address = layout.pmd_address(tile, position)
        assert layout.contains(address)
        assert layout.tile_of_block(address) == tile


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_traversal_rank_round_trip(data):
    width = data.draw(st.integers(min_value=32, max_value=320))
    height = data.draw(st.integers(min_value=32, max_value=320))
    order = data.draw(st.sampled_from(list(TraversalOrder)))
    screen = ScreenConfig(width, height, 32)
    traversal = tile_traversal(screen, order)
    assert sorted(traversal) == list(range(screen.num_tiles))
