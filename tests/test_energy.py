"""Energy model and accounting."""

import pytest

from repro.energy import EnergyModel, gpu_energy, memory_hierarchy_energy
from repro.energy.model import StructureEnergy, sram_read_energy_nj
from repro.tcor.system import SystemResult, simulate_baseline, simulate_tcor


class TestSramModel:
    def test_energy_grows_with_size(self):
        assert sram_read_energy_nj(64 * 1024) > sram_read_energy_nj(16 * 1024)

    def test_sqrt_scaling(self):
        small = sram_read_energy_nj(32 * 1024)
        large = sram_read_energy_nj(128 * 1024)
        assert large == pytest.approx(2 * small, rel=0.01)

    def test_associativity_penalty(self):
        assert sram_read_energy_nj(64 * 1024, 8) > \
            sram_read_energy_nj(64 * 1024, 4)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            sram_read_energy_nj(0)

    def test_writes_cost_more(self):
        entry = StructureEnergy.for_sram("x", 32 * 1024)
        assert entry.write_nj > entry.read_nj


class TestModelDefaults:
    def test_all_structure_keys_present(self):
        model = EnergyModel.default()
        for key in ("tile_cache", "primitive_list_cache", "primitive_buffer",
                    "attribute_buffer", "texture_l1", "vertex_l1",
                    "instruction_l1", "l2"):
            assert key in model.structures

    def test_dram_dwarfs_sram(self):
        model = EnergyModel.default()
        assert model.dram_access_nj > 10 * model.structures["l2"].access_nj

    def test_unknown_structure_rejected(self):
        with pytest.raises(KeyError):
            EnergyModel.default().access_energy_nj("warp_scheduler", 1)

    def test_dram_energy_linear(self):
        model = EnergyModel.default()
        assert model.access_energy_nj("dram", 10) == \
            pytest.approx(10 * model.dram_access_nj)


class TestAccounting:
    def test_memory_hierarchy_energy_sums_structures(self):
        model = EnergyModel.default()
        result = SystemResult(label="x", alias="y",
                              structure_accesses={"l2": 100, "dram": 10})
        expected = (model.access_energy_nj("l2", 100)
                    + model.access_energy_nj("dram", 10))
        assert memory_hierarchy_energy(result, model) == \
            pytest.approx(expected)

    def test_tcor_saves_memory_hierarchy_energy(self, tiny_workload):
        base = memory_hierarchy_energy(simulate_baseline(tiny_workload))
        tcor = memory_hierarchy_energy(simulate_tcor(tiny_workload))
        assert tcor < base

    def test_gpu_energy_dilutes_the_saving(self, tiny_workload):
        base_result = simulate_baseline(tiny_workload)
        tcor_result = simulate_tcor(tiny_workload)
        base = gpu_energy(base_result, tiny_workload)
        tcor = gpu_energy(tcor_result, tiny_workload)
        mem_saving = 1 - (tcor.memory_hierarchy_nj / base.memory_hierarchy_nj)
        gpu_saving = 1 - (tcor.total_gpu_nj / base.total_gpu_nj)
        assert 0 < gpu_saving < mem_saving

    def test_compute_energy_identical_across_systems(self, tiny_workload):
        base = gpu_energy(simulate_baseline(tiny_workload), tiny_workload)
        tcor = gpu_energy(simulate_tcor(tiny_workload), tiny_workload)
        assert base.compute_nj == tcor.compute_nj

    def test_memory_share_in_plausible_band(self, tiny_workload):
        report = gpu_energy(simulate_baseline(tiny_workload), tiny_workload)
        assert 0.1 < report.memory_share < 0.9

    def test_breakdown_sums_to_total(self, tiny_workload):
        report = gpu_energy(simulate_baseline(tiny_workload), tiny_workload)
        assert sum(report.breakdown.values()) == \
            pytest.approx(report.memory_hierarchy_nj)


class TestRenderingEliminationEnergy:
    """The PR-10 energy satellite: a discarded tile contributes its
    signature compare but zero raster/pixel energy, and the split
    still conserves (memory + compute == total, exactly)."""

    def _animated(self, churn=0.0):
        from repro.anim import AnimationSpec, build_animated_workload
        from repro.workloads.suite import BENCHMARKS

        anim = AnimationSpec(frames=4, path="orbit", dwell=2, travel=2,
                             churn=churn, seed=7)
        return build_animated_workload(BENCHMARKS["SoD"], anim,
                                       scale=0.08)

    def test_re_off_report_is_unchanged(self, tiny_workload):
        """Byte-identity with the pre-RE accounting: a single-frame
        run without RE evaluates the exact original formula."""
        model = EnergyModel.default()
        report = gpu_energy(simulate_tcor(tiny_workload), tiny_workload,
                            model)
        spec = tiny_workload.spec
        screen = tiny_workload.screen
        pixels = screen.width * screen.height * tiny_workload.scale
        expected = (pixels * spec.shader_insts_per_pixel
                    * model.shader_instruction_nj
                    + tiny_workload.num_primitives
                    * model.geometry_per_primitive_nj
                    + pixels * model.fixed_function_per_pixel_nj)
        assert report.compute_nj == expected  # exact, not approx
        assert "signature_unit" not in report.breakdown

    def test_signature_unit_appears_only_when_re_ran(self):
        workload = self._animated()
        off = gpu_energy(simulate_tcor(workload), workload)
        on = gpu_energy(
            simulate_tcor(workload, rendering_elimination=True), workload)
        assert "signature_unit" not in off.breakdown
        assert on.breakdown["signature_unit"] > 0

    def test_skipped_tiles_drop_compute_and_memory_energy(self):
        workload = self._animated()
        result_on = simulate_tcor(workload, rendering_elimination=True)
        assert result_on.tiles_skipped > 0
        off = gpu_energy(simulate_tcor(workload), workload)
        on = gpu_energy(result_on, workload)
        assert on.compute_nj < off.compute_nj
        assert on.memory_hierarchy_nj < off.memory_hierarchy_nj

    def test_full_churn_costs_the_compares_without_the_savings(self):
        workload = self._animated(churn=1.0)
        result_on = simulate_tcor(workload, rendering_elimination=True)
        assert result_on.tiles_skipped == 0
        off = gpu_energy(simulate_tcor(workload), workload)
        on = gpu_energy(result_on, workload)
        assert on.compute_nj == off.compute_nj
        assert on.memory_hierarchy_nj > off.memory_hierarchy_nj

    def test_conservation_invariant_in_registry(self):
        from repro.anim import register_energy_gauges
        from repro.obs.registry import MetricsRegistry

        workload = self._animated()
        report = gpu_energy(
            simulate_tcor(workload, rendering_elimination=True), workload)
        registry = MetricsRegistry()
        register_energy_gauges(registry, "SoD", 0, report)
        assert registry.check_invariants() == []
        snapshot = registry.snapshot()
        assert snapshot["re.SoD.c000.energy.total_nj"] == \
            report.total_gpu_nj
