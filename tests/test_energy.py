"""Energy model and accounting."""

import pytest

from repro.energy import EnergyModel, gpu_energy, memory_hierarchy_energy
from repro.energy.model import StructureEnergy, sram_read_energy_nj
from repro.tcor.system import SystemResult, simulate_baseline, simulate_tcor


class TestSramModel:
    def test_energy_grows_with_size(self):
        assert sram_read_energy_nj(64 * 1024) > sram_read_energy_nj(16 * 1024)

    def test_sqrt_scaling(self):
        small = sram_read_energy_nj(32 * 1024)
        large = sram_read_energy_nj(128 * 1024)
        assert large == pytest.approx(2 * small, rel=0.01)

    def test_associativity_penalty(self):
        assert sram_read_energy_nj(64 * 1024, 8) > \
            sram_read_energy_nj(64 * 1024, 4)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            sram_read_energy_nj(0)

    def test_writes_cost_more(self):
        entry = StructureEnergy.for_sram("x", 32 * 1024)
        assert entry.write_nj > entry.read_nj


class TestModelDefaults:
    def test_all_structure_keys_present(self):
        model = EnergyModel.default()
        for key in ("tile_cache", "primitive_list_cache", "primitive_buffer",
                    "attribute_buffer", "texture_l1", "vertex_l1",
                    "instruction_l1", "l2"):
            assert key in model.structures

    def test_dram_dwarfs_sram(self):
        model = EnergyModel.default()
        assert model.dram_access_nj > 10 * model.structures["l2"].access_nj

    def test_unknown_structure_rejected(self):
        with pytest.raises(KeyError):
            EnergyModel.default().access_energy_nj("warp_scheduler", 1)

    def test_dram_energy_linear(self):
        model = EnergyModel.default()
        assert model.access_energy_nj("dram", 10) == \
            pytest.approx(10 * model.dram_access_nj)


class TestAccounting:
    def test_memory_hierarchy_energy_sums_structures(self):
        model = EnergyModel.default()
        result = SystemResult(label="x", alias="y",
                              structure_accesses={"l2": 100, "dram": 10})
        expected = (model.access_energy_nj("l2", 100)
                    + model.access_energy_nj("dram", 10))
        assert memory_hierarchy_energy(result, model) == \
            pytest.approx(expected)

    def test_tcor_saves_memory_hierarchy_energy(self, tiny_workload):
        base = memory_hierarchy_energy(simulate_baseline(tiny_workload))
        tcor = memory_hierarchy_energy(simulate_tcor(tiny_workload))
        assert tcor < base

    def test_gpu_energy_dilutes_the_saving(self, tiny_workload):
        base_result = simulate_baseline(tiny_workload)
        tcor_result = simulate_tcor(tiny_workload)
        base = gpu_energy(base_result, tiny_workload)
        tcor = gpu_energy(tcor_result, tiny_workload)
        mem_saving = 1 - (tcor.memory_hierarchy_nj / base.memory_hierarchy_nj)
        gpu_saving = 1 - (tcor.total_gpu_nj / base.total_gpu_nj)
        assert 0 < gpu_saving < mem_saving

    def test_compute_energy_identical_across_systems(self, tiny_workload):
        base = gpu_energy(simulate_baseline(tiny_workload), tiny_workload)
        tcor = gpu_energy(simulate_tcor(tiny_workload), tiny_workload)
        assert base.compute_nj == tcor.compute_nj

    def test_memory_share_in_plausible_band(self, tiny_workload):
        report = gpu_energy(simulate_baseline(tiny_workload), tiny_workload)
        assert 0.1 < report.memory_share < 0.9

    def test_breakdown_sums_to_total(self, tiny_workload):
        report = gpu_energy(simulate_baseline(tiny_workload), tiny_workload)
        assert sum(report.breakdown.values()) == \
            pytest.approx(report.memory_hierarchy_nj)
