"""Shared experiment plumbing."""

import pytest

from repro.experiments.common import (
    ExperimentResult,
    SimulationCache,
    format_table,
    geometric_mean_ratio,
)


@pytest.fixture
def result() -> ExperimentResult:
    return ExperimentResult(
        exp_id="figX", title="demo",
        headers=["bench", "value"],
        rows=[["CCS", 1.5], ["DDS", 2.0]],
        notes="a note",
    )


class TestExperimentResult:
    def test_column(self, result):
        assert result.column("value") == [1.5, 2.0]

    def test_row_for(self, result):
        assert result.row_for("DDS") == ["DDS", 2.0]
        with pytest.raises(KeyError):
            result.row_for("nope")

    def test_format_table(self, result):
        text = format_table(result)
        assert "figX" in text
        assert "1.500" in text
        assert "a note" in text


class TestSimulationCache:
    def test_memoizes_workloads_and_systems(self):
        cache = SimulationCache(scale=0.05, aliases=("GTr",))
        first = cache.workload("GTr")
        assert cache.workload("GTr") is first
        base_a = cache.baseline("GTr", 64 * 1024)
        base_b = cache.baseline("GTr", 64 * 1024)
        assert base_a is base_b
        # Different sizes and variants are distinct entries.
        other = cache.baseline("GTr", 128 * 1024)
        assert other is not base_a
        tcor = cache.tcor("GTr", 64 * 1024)
        tcor_no_l2 = cache.tcor("GTr", 64 * 1024, l2_enhancements=False)
        assert tcor is not tcor_no_l2

    def test_default_aliases_cover_the_suite(self):
        cache = SimulationCache(scale=0.05)
        assert len(cache.aliases) == 10


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean_ratio([4.0, 1.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean_ratio([]) == 0.0


class TestTcorKeyIncludesPartition:
    """The memo key must carry the derived TCOR partition, not just the
    total budget — per-structure sweeps must never alias (regression)."""

    def test_key_contains_partition(self):
        from repro.config import KIB

        cache = SimulationCache(scale=0.05, aliases=("GTr",))
        cache.tcor("GTr", 64 * KIB)
        (key,) = cache._systems
        assert key == ("tcor", "GTr", 64 * KIB, 16 * KIB, 48 * KIB, True)

    def test_same_total_different_split_are_distinct(self):
        from repro.config import CacheConfig, KIB, TCORConfig

        cache = SimulationCache(scale=0.05, aliases=("GTr",))
        default = cache.tcor("GTr", 64 * KIB)
        resplit = TCORConfig(
            primitive_list_cache=CacheConfig("primitive_list", 32 * KIB),
            attribute_buffer_bytes=32 * KIB,
        )
        other = cache.tcor("GTr", 64 * KIB, tcor_config=resplit)
        assert other is not default
        assert len(cache._systems) == 2
        # A repeat lookup of either split memoizes, not re-simulates.
        assert cache.tcor("GTr", 64 * KIB) is default
        assert cache.tcor("GTr", 64 * KIB, tcor_config=resplit) is other
