"""Mattson stack-distance analysis vs direct LRU simulation."""

import random

import pytest

from repro.caches.fully_assoc import fully_associative_cache
from repro.caches.mattson import COMPULSORY, MattsonStack, lru_miss_curve
from repro.caches.policies import make_policy


class TestStackDistances:
    def test_first_touches_are_compulsory(self):
        stack = MattsonStack()
        assert stack.record(1) == COMPULSORY
        assert stack.record(2) == COMPULSORY

    def test_immediate_rereference_distance_zero(self):
        stack = MattsonStack()
        stack.record(1)
        assert stack.record(1) == 0

    def test_distance_counts_distinct_intervening_lines(self):
        stack = MattsonStack()
        for line in (1, 2, 3, 2, 1):
            last = stack.record(line)
        assert last == 2  # {2, 3} touched since the previous access to 1

    def test_repeats_do_not_inflate_distance(self):
        stack = MattsonStack()
        for line in (1, 2, 2, 2, 1):
            last = stack.record(line)
        assert last == 1

    def test_capacity_growth(self):
        stack = MattsonStack(trace_length_hint=2)
        for line in range(100):
            stack.record(line % 7)
        assert stack.accesses == 100


class TestMissCurve:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_direct_simulation(self, seed):
        rng = random.Random(seed)
        trace = [rng.randrange(40) for _ in range(2000)]
        curve = lru_miss_curve(trace, [1, 2, 5, 13, 40])
        for capacity, expected in curve.items():
            cache = fully_associative_cache(capacity * 64, 64,
                                            make_policy("lru"))
            for line in trace:
                cache.access(line * 64)
            assert cache.stats.misses == expected, capacity

    def test_monotone_in_capacity(self):
        rng = random.Random(9)
        trace = [rng.randrange(64) for _ in range(3000)]
        capacities = [1, 2, 4, 8, 16, 32, 64, 128]
        curve = lru_miss_curve(trace, capacities)
        misses = [curve[c] for c in capacities]
        assert misses == sorted(misses, reverse=True)

    def test_floor_is_compulsory_misses(self):
        trace = [1, 2, 3, 1, 2, 3]
        assert lru_miss_curve(trace, [100])[100] == 3

    def test_zero_capacity_misses_everything(self):
        trace = [1, 1, 1]
        assert lru_miss_curve(trace, [0])[0] == 3
