"""Edge-function rasterization: coverage, fill rule, depth."""

import pytest

from repro.config import ScreenConfig
from repro.geometry.primitives import Primitive, Vertex
from repro.raster.fragments import Fragment, Quad
from repro.raster.rasterizer import rasterize_in_tile

SCREEN = ScreenConfig(64, 64, 32)  # 2x2 tiles


def covered_pixels(prim, tile_id=0):
    pixels = set()
    for quad in rasterize_in_tile(prim, SCREEN, tile_id):
        for fragment in quad.fragments():
            pixels.add((fragment.x, fragment.y))
    return pixels


class TestQuads:
    def test_quad_alignment_enforced(self):
        with pytest.raises(ValueError):
            Quad(base_x=1, base_y=0, mask=1, depths=(0,) * 4, primitive_id=0)

    def test_quad_mask_bounds(self):
        with pytest.raises(ValueError):
            Quad(base_x=0, base_y=0, mask=0, depths=(0,) * 4, primitive_id=0)

    def test_fragments_follow_mask(self):
        quad = Quad(0, 0, mask=0b1001, depths=(0.1, 0.0, 0.0, 0.4),
                    primitive_id=7)
        fragments = quad.fragments()
        assert fragments == [Fragment(0, 0, 0.1, 7), Fragment(1, 1, 0.4, 7)]
        assert quad.coverage == 2


class TestCoverage:
    def test_axis_aligned_square_half(self):
        # Right triangle covering the lower-left half of an 8x8 square.
        prim = Primitive(0, Vertex(0, 0), Vertex(8, 8), Vertex(0, 8))
        pixels = covered_pixels(prim)
        assert (0, 7) in pixels
        assert (7, 7) in pixels or (6, 7) in pixels
        assert (7, 0) not in pixels  # upper-right half is outside
        # Half of an 8x8 block: about 32 pixels (exactly, with the
        # diagonal split by the fill rule).
        assert 24 <= len(pixels) <= 40

    def test_tiny_triangle_still_hits_a_pixel_center_or_not(self):
        # Smaller than a pixel, placed between centers: no coverage.
        prim = Primitive(0, Vertex(2.1, 2.1), Vertex(2.3, 2.1),
                         Vertex(2.1, 2.3))
        assert covered_pixels(prim) == set()
        # Enclosing a pixel center: exactly one fragment.  (The
        # hypotenuse stays clear of the neighbouring center so the fill
        # rule's edge convention is not in play.)
        prim = Primitive(1, Vertex(2.2, 2.2), Vertex(3.6, 2.2),
                         Vertex(2.2, 3.6))
        assert covered_pixels(prim) == {(2, 2)}

    def test_degenerate_triangle_rasterizes_nothing(self):
        prim = Primitive(0, Vertex(0, 0), Vertex(5, 5), Vertex(10, 10))
        assert rasterize_in_tile(prim, SCREEN, 0) == []

    def test_winding_independent(self):
        ccw = Primitive(0, Vertex(2, 2), Vertex(20, 2), Vertex(2, 20))
        cw = Primitive(1, Vertex(2, 2), Vertex(2, 20), Vertex(20, 2))
        assert covered_pixels(ccw) == covered_pixels(cw)

    def test_clipped_to_tile(self):
        # Spans both tiles of the top row; tile 0 only sees x < 32.
        prim = Primitive(0, Vertex(0, 0), Vertex(64, 0), Vertex(0, 40))
        for x, y in covered_pixels(prim, tile_id=0):
            assert x < 32 and y < 32
        right = covered_pixels(prim, tile_id=1)
        assert right and all(x >= 32 for x, y in right)


class TestFillRule:
    def test_shared_edge_no_double_hit_no_gap(self):
        """Two triangles forming a square: every interior pixel covered
        exactly once (the top-left rule's whole point)."""
        a = Primitive(0, Vertex(4, 4), Vertex(20, 4), Vertex(4, 20))
        b = Primitive(1, Vertex(20, 4), Vertex(20, 20), Vertex(4, 20))
        pixels_a = covered_pixels(a)
        pixels_b = covered_pixels(b)
        assert not pixels_a & pixels_b, "double-shaded pixels on shared edge"
        union = pixels_a | pixels_b
        for x in range(4, 20):
            for y in range(4, 20):
                assert (x, y) in union, f"gap at {(x, y)}"

    def test_quad_of_four_triangles_partitions(self):
        center = Vertex(12, 12)
        corners = [Vertex(4, 4), Vertex(20, 4), Vertex(20, 20), Vertex(4, 20)]
        triangles = [
            Primitive(i, corners[i], corners[(i + 1) % 4], center)
            for i in range(4)
        ]
        seen: dict[tuple, int] = {}
        for triangle in triangles:
            for pixel in covered_pixels(triangle):
                seen[pixel] = seen.get(pixel, 0) + 1
        assert all(count == 1 for count in seen.values())


class TestDepthInterpolation:
    def test_constant_depth(self):
        prim = Primitive(0, Vertex(0, 0, 0.25), Vertex(16, 0, 0.25),
                         Vertex(0, 16, 0.25))
        for quad in rasterize_in_tile(prim, SCREEN, 0):
            for fragment in quad.fragments():
                assert fragment.depth == pytest.approx(0.25)

    def test_linear_gradient(self):
        # Depth = x / 32 across the triangle.
        prim = Primitive(0, Vertex(0, 0, 0.0), Vertex(32, 0, 1.0),
                         Vertex(0, 32, 0.0))
        for quad in rasterize_in_tile(prim, SCREEN, 0):
            for fragment in quad.fragments():
                expected = (fragment.x + 0.5) / 32.0
                assert fragment.depth == pytest.approx(expected, abs=1e-9)
