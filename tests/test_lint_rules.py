"""Per-rule tests: each rule fires on a seeded violation, stays silent
on a clean equivalent, and honours suppression comments."""

from __future__ import annotations

from textwrap import dedent

from repro.lint import lint_paths


def run_lint(tmp_path, files, **kwargs):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(source))
    kwargs.setdefault("use_cache", False)
    return lint_paths([str(tmp_path)], root=tmp_path, **kwargs)


def codes(result):
    return [violation.rule for violation in result.violations]


class TestSIM001GlobalRandom:
    def test_module_global_random_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            import random
            def pick(items):
                return random.choice(items)
        """})
        assert codes(result) == ["SIM001"]

    def test_numpy_global_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            import numpy as np
            def noise():
                return np.random.rand(4)
        """})
        assert codes(result) == ["SIM001"]

    def test_unseeded_generator_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            import numpy as np
            rng = np.random.default_rng()
        """})
        assert codes(result) == ["SIM001"]

    def test_seeded_instance_clean(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            import random
            import numpy as np
            rng = random.Random(7)
            npr = np.random.default_rng(7)
            def pick(items):
                return rng.choice(items)
        """})
        assert codes(result) == []

    def test_workloads_seam_exempt(self, tmp_path):
        result = run_lint(tmp_path, {"workloads/traffic.py": """
            import random
            def jitter():
                return random.random()
        """})
        assert codes(result) == []

    def test_reseeding_global_fires_even_in_seam(self, tmp_path):
        result = run_lint(tmp_path, {"workloads/traffic.py": """
            import random
            random.seed(0)
        """})
        assert codes(result) == ["SIM001"]

    def test_suppressed(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            import random
            x = random.random()  # lint: disable=SIM001
        """})
        assert codes(result) == []


class TestSIM002MutableDefaults:
    def test_list_default_argument_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            def accumulate(item, into=[]):
                into.append(item)
                return into
        """})
        assert codes(result) == ["SIM002"]

    def test_kwonly_dict_default_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            def configure(*, overrides={}):
                return overrides
        """})
        assert codes(result) == ["SIM002"]

    def test_dataclass_mutable_field_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            from dataclasses import dataclass
            @dataclass
            class Stats:
                samples: list = []
        """})
        assert codes(result) == ["SIM002"]

    def test_default_factory_clean(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            from dataclasses import dataclass, field
            @dataclass
            class Holder:
                samples: list = field(default_factory=list)
            def accumulate(item, into=None):
                into = [] if into is None else into
                into.append(item)
                return into
        """})
        assert codes(result) == []

    def test_suppressed(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            def accumulate(item, into=[]):  # lint: disable=SIM002
                return into
        """})
        assert codes(result) == []


class TestSIM003FloatEquality:
    def test_float_equality_in_timing_fires(self, tmp_path):
        result = run_lint(tmp_path, {"timing/fps.py": """
            def check(elapsed):
                return elapsed == 16.6
        """})
        assert codes(result) == ["SIM003"]

    def test_not_equal_in_energy_fires(self, tmp_path):
        result = run_lint(tmp_path, {"energy/model.py": """
            def check(total_nj):
                return total_nj != 0.0
        """})
        assert codes(result) == ["SIM003"]

    def test_outside_scoped_dirs_clean(self, tmp_path):
        result = run_lint(tmp_path, {"geometry/mesh.py": """
            def check(x):
                return x == 16.6
        """})
        assert codes(result) == []

    def test_ordering_comparison_clean(self, tmp_path):
        result = run_lint(tmp_path, {"timing/fps.py": """
            def check(elapsed):
                return elapsed < 16.6
        """})
        assert codes(result) == []

    def test_suppressed(self, tmp_path):
        result = run_lint(tmp_path, {"timing/fps.py": """
            def check(elapsed):
                return elapsed == 16.6  # lint: disable=SIM003
        """})
        assert codes(result) == []


class TestSIM004MagicSentinel:
    def test_shift_literal_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            NEVER = 1 << 30
        """})
        assert codes(result) == ["SIM004"]

    def test_decimal_literal_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            def effective(rank):
                return 1073741824 if rank is None else rank
        """})
        assert codes(result) == ["SIM004"]

    def test_hex_address_constant_clean(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            TEXTURE_BASE = 0x4000_0000
        """})
        assert codes(result) == []

    def test_import_from_constants_clean(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            from repro.constants import NO_NEXT_USE_RANK
            def effective(rank):
                return NO_NEXT_USE_RANK if rank is None else rank
        """})
        assert codes(result) == []

    def test_home_module_exempt(self, tmp_path):
        result = run_lint(tmp_path, {"repro/constants.py": """
            NO_NEXT_USE_RANK = 1 << 30
        """})
        assert codes(result) == []


class TestSIM005StatsConservation:
    def test_never_incremented_fires(self, tmp_path):
        result = run_lint(tmp_path, {"stats.py": """
            from dataclasses import dataclass
            @dataclass
            class CacheStats:
                hits_ever: int = 0
                def as_dict(self):
                    return {"hits_ever": self.hits_ever}
        """})
        assert codes(result) == ["SIM005"]
        assert "never incremented" in result.violations[0].message

    def test_never_surfaced_fires(self, tmp_path):
        result = run_lint(tmp_path, {"stats.py": """
            from dataclasses import dataclass
            @dataclass
            class CacheStats:
                hits_ever: int = 0
        """, "cache.py": """
            def touch(stats):
                stats.hits_ever += 1
        """})
        assert codes(result) == ["SIM005"]
        assert "never surfaced" in result.violations[0].message

    def test_cross_file_increment_and_read_clean(self, tmp_path):
        result = run_lint(tmp_path, {"stats.py": """
            from dataclasses import dataclass
            @dataclass
            class CacheStats:
                hits_ever: int = 0
        """, "cache.py": """
            def touch(stats):
                stats.hits_ever += 1
        """, "report.py": """
            def summarize(stats):
                return {"hits": stats.hits_ever}
        """})
        assert codes(result) == []

    def test_reporter_method_surfaces_everything(self, tmp_path):
        result = run_lint(tmp_path, {"stats.py": """
            import dataclasses
            from dataclasses import dataclass
            @dataclass
            class CacheStats:
                hits_ever: int = 0
                def as_dict(self):
                    return dataclasses.asdict(self)
        """, "cache.py": """
            def touch(stats):
                stats.hits_ever += 1
        """})
        assert codes(result) == []

    def test_non_stats_dataclass_ignored(self, tmp_path):
        result = run_lint(tmp_path, {"model.py": """
            from dataclasses import dataclass
            @dataclass
            class Line:
                tag: int = 0
        """})
        assert codes(result) == []

    def test_suppressed_at_field_line(self, tmp_path):
        result = run_lint(tmp_path, {"stats.py": """
            from dataclasses import dataclass
            @dataclass
            class CacheStats:
                hits_ever: int = 0  # lint: disable=SIM005
                def as_dict(self):
                    return {"hits_ever": self.hits_ever}
        """})
        assert codes(result) == []


class TestSIM006ConfigLegality:
    def test_non_power_of_two_sets_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sweep.py": """
            from repro.config import CacheConfig
            BAD = CacheConfig("tile", 48 * 1024)
        """})
        assert codes(result) == ["SIM006"]

    def test_module_constant_folding(self, tmp_path):
        result = run_lint(tmp_path, {"sweep.py": """
            from repro.config import CacheConfig
            KIB = 1024
            BAD = CacheConfig("tile", 24 * KIB, line_bytes=64,
                              associativity=4)
        """})
        assert codes(result) == ["SIM006"]

    def test_indivisible_ways_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sweep.py": """
            from repro.config import CacheConfig
            BAD = CacheConfig("tile", 64 * 1024, associativity=3)
        """})
        assert codes(result) == ["SIM006"]

    def test_paper_geometry_clean(self, tmp_path):
        result = run_lint(tmp_path, {"sweep.py": """
            from repro.config import CacheConfig
            KIB = 1024
            MIB = 1024 * 1024
            TILE = CacheConfig("tile", 64 * KIB)
            L2 = CacheConfig("l2", 1 * MIB, associativity=8,
                             latency_cycles=12)
        """})
        assert codes(result) == []

    def test_unfoldable_arguments_skipped(self, tmp_path):
        result = run_lint(tmp_path, {"sweep.py": """
            from repro.config import CacheConfig
            def build(kib):
                return CacheConfig("tile", kib * 1024)
        """})
        assert codes(result) == []

    def test_total_size_below_list_cache_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sweep.py": """
            from repro.config import TCORConfig
            BAD = TCORConfig.for_total_size(8 * 1024)
        """})
        assert codes(result) == ["SIM006"]

    def test_odd_primitive_buffer_ways_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sweep.py": """
            from repro.config import TCORConfig
            BAD = TCORConfig(primitive_buffer_associativity=3)
        """})
        assert codes(result) == ["SIM006"]


class TestSIM007SwallowedExceptions:
    def test_bare_except_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            def step(cache):
                try:
                    cache.access(0)
                except:
                    pass
        """})
        assert codes(result) == ["SIM007"]

    def test_swallowed_broad_exception_fires(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            def step(cache):
                try:
                    cache.access(0)
                except Exception:
                    pass
        """})
        assert codes(result) == ["SIM007"]

    def test_specific_handler_clean(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            def step(cache):
                try:
                    cache.access(0)
                except KeyError:
                    pass
        """})
        assert codes(result) == []

    def test_broad_handler_that_handles_clean(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            def step(cache, log):
                try:
                    cache.access(0)
                except Exception as error:
                    log.append(error)
                    raise
        """})
        assert codes(result) == []

    def test_suppressed(self, tmp_path):
        result = run_lint(tmp_path, {"sim.py": """
            def step(cache):
                try:
                    cache.access(0)
                except:  # lint: disable=SIM007
                    pass
        """})
        assert codes(result) == []


class TestSIM008LibraryPrint:
    def test_print_in_library_fires(self, tmp_path):
        result = run_lint(tmp_path, {"caches/lru.py": """
            def victim(candidates):
                print("evicting", candidates[0])
                return candidates[0]
        """})
        assert codes(result) == ["SIM008"]

    def test_cli_module_exempt(self, tmp_path):
        result = run_lint(tmp_path, {"tool.py": """
            def main():
                print("report")
            if __name__ == "__main__":
                main()
        """})
        assert codes(result) == []

    def test_pytest_file_exempt(self, tmp_path):
        result = run_lint(tmp_path, {"test_bench.py": """
            def test_headline():
                print("table row")
        """})
        assert codes(result) == []

    def test_suppressed(self, tmp_path):
        result = run_lint(tmp_path, {"caches/lru.py": """
            def victim(candidates):
                print("evicting")  # lint: disable=SIM008
                return candidates[0]
        """})
        assert codes(result) == []


class TestSIM009PrivateReachThrough:
    def test_cross_object_private_access_fires(self, tmp_path):
        result = run_lint(tmp_path, {"system.py": """
            def writeback(shared):
                for set_index, line in shared.l2.iter_lines():
                    shared.l2._evict(set_index, line.tag)
        """})
        assert codes(result) == ["SIM009"]

    def test_self_and_cls_access_clean(self, tmp_path):
        result = run_lint(tmp_path, {"cache.py": """
            class Cache:
                def __init__(self):
                    self._sets = []
                def occupancy(self):
                    return len(self._sets)
                @classmethod
                def make(cls):
                    return cls._default()
                @classmethod
                def _default(cls):
                    return Cache()
        """})
        assert codes(result) == []

    def test_same_file_collaboration_clean(self, tmp_path):
        result = run_lint(tmp_path, {"cache.py": """
            class Cache:
                def _evict(self, tag):
                    return tag
            class Shim:
                def drop(self, cache, tag):
                    return cache._evict(tag)
        """})
        assert codes(result) == []

    def test_nested_attribute_receiver_fires(self, tmp_path):
        result = run_lint(tmp_path, {"system.py": """
            def peek(shared):
                return shared.l2._access_index
        """})
        assert codes(result) == ["SIM009"]

    def test_dunder_and_namedtuple_api_exempt(self, tmp_path):
        result = run_lint(tmp_path, {"tools.py": """
            def clone(config, point):
                config.__dict__
                return point._replace(x=1)
        """})
        assert codes(result) == []

    def test_suppressed(self, tmp_path):
        result = run_lint(tmp_path, {"reference.py": """
            def writeback(l2, set_index, tag):
                return l2._evict(set_index, tag)  # lint: disable=SIM009
        """})
        assert codes(result) == []


class TestSIM010StatsReachThrough:
    def test_foreign_stats_write_fires(self, tmp_path):
        result = run_lint(tmp_path, {"policy.py": """
            def drop_dead_line(l2):
                l2.stats.dead_writebacks_avoided += 1
        """})
        assert codes(result) == ["SIM010"]

    def test_plain_assignment_fires(self, tmp_path):
        result = run_lint(tmp_path, {"policy.py": """
            def reset(cache):
                cache.stats.bypasses = 0
        """})
        assert codes(result) == ["SIM010"]

    def test_own_stats_write_clean(self, tmp_path):
        result = run_lint(tmp_path, {"cache.py": """
            class Cache:
                def bypass(self):
                    self.stats.bypasses += 1
        """})
        assert codes(result) == []

    def test_reading_foreign_stats_clean(self, tmp_path):
        result = run_lint(tmp_path, {"report.py": """
            def miss_count(l2):
                return l2.stats.read_misses + l2.stats.write_misses
        """})
        assert codes(result) == []

    def test_suppressed(self, tmp_path):
        result = run_lint(tmp_path, {"reference.py": """
            def reference_drop(l2):
                l2.stats.dead_writebacks_avoided += 1  # lint: disable=SIM010
        """})
        assert codes(result) == []
