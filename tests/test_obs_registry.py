"""MetricsRegistry: registration, snapshots, invariants, histograms."""

import pytest

from repro.caches.stats import CacheStats
from repro.obs import (
    MetricsInvariantError,
    MetricsRegistry,
    Observation,
    StatsLike,
    flatten,
)


def _cache_stats(reads=10, read_misses=4, writes=6, write_misses=2):
    stats = CacheStats()
    for _ in range(reads - read_misses):
        stats.record(is_write=False, hit=True, region=None)
    for _ in range(read_misses):
        stats.record(is_write=False, hit=False, region=None)
    for _ in range(writes - write_misses):
        stats.record(is_write=True, hit=True, region=None)
    for _ in range(write_misses):
        stats.record(is_write=True, hit=False, region=None)
    return stats


class _RawStats:
    """Counters stored flat (not derived), so corruption is expressible."""

    def __init__(self):
        self.counters = {"accesses": 16, "reads": 10, "writes": 6,
                         "misses": 6, "read_misses": 4, "write_misses": 2,
                         "hits": 10}

    def as_dict(self) -> dict:
        return dict(self.counters)

    def register(self, registry, prefix: str) -> None:
        registry.register(prefix, self)


class TestFlatten:
    def test_nested_dicts_become_dotted_names(self):
        flat = flatten({"a": {"b": 1, "c": {"d": 2.5}}, "e": 3}, "p")
        assert flat == {"p.a.b": 1, "p.a.c.d": 2.5, "p.e": 3}

    def test_non_numeric_leaves_dropped(self):
        flat = flatten({"label": "CCS", "n": 1})
        assert flat == {"n": 1}

    def test_enum_like_keys_render_by_name(self):
        from repro.workloads.trace import Region

        flat = flatten({Region.PB_LISTS: {"reads": 7}}, "x")
        assert flat == {"x.pb_lists.reads": 7}


class TestRegistry:
    def test_every_stats_class_satisfies_statslike(self):
        from repro.caches.hierarchy import MemoryCounters
        from repro.dram.model import DRAMStats
        from repro.tcor.attribute_cache import AttributeCacheStats

        for source in (CacheStats(), AttributeCacheStats(), MemoryCounters(),
                       DRAMStats()):
            assert isinstance(source, StatsLike)

    def test_snapshot_reads_live_objects(self):
        registry = MetricsRegistry()
        stats = CacheStats()
        stats.register(registry, "live.l2")
        stats.record(is_write=False, hit=True, region=None)
        assert registry.snapshot()["live.l2.reads"] == 1
        stats.record(is_write=False, hit=True, region=None)
        assert registry.snapshot()["live.l2.reads"] == 2

    def test_same_object_same_prefix_registers_once(self):
        registry = MetricsRegistry()
        stats = _cache_stats()
        stats.register(registry, "live.l2")
        stats.register(registry, "live.l2")
        assert registry.snapshot()["live.l2.reads"] == stats.reads

    def test_distinct_objects_same_prefix_sum(self):
        registry = MetricsRegistry()
        _cache_stats(reads=3, read_misses=0).register(registry, "live.tile")
        _cache_stats(reads=5, read_misses=0).register(registry, "live.tile")
        assert registry.snapshot()["live.tile.reads"] == 8

    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.count("sim.runs")
        registry.count("sim.runs", 2)
        registry.gauge("sim.scale", 0.25)
        registry.gauge("sim.scale", 0.5)
        snap = registry.snapshot()
        assert snap["sim.runs"] == 3
        assert snap["sim.scale"] == 0.5

    def test_structural_invariants_detect_corruption(self):
        registry = MetricsRegistry()
        stats = _RawStats()
        stats.register(registry, "live.l2")
        assert registry.check_invariants() == []
        stats.counters["reads"] += 1  # accesses no longer reads + writes
        failures = registry.check_invariants()
        assert failures and "live.l2" in failures[0]
        with pytest.raises(MetricsInvariantError):
            registry.assert_invariants()

    def test_live_cache_stats_pass_structural_rules(self):
        registry = MetricsRegistry()
        _cache_stats().register(registry, "live.l2")
        assert registry.check_invariants() == []

    def test_expect_sum_rule(self):
        registry = MetricsRegistry()
        registry.count("a.x", 3)
        registry.count("a.y", 4)
        registry.count("b.total", 7)
        registry.expect_sum("a == b", ("a.x", "a.y"), ("b.total",))
        registry.expect_sum("a == b", ("a.x", "a.y"), ("b.total",))  # no-op
        assert registry.check_invariants() == []
        registry.count("a.x")
        assert any("a == b" in failure
                   for failure in registry.check_invariants())

    def test_expect_sum_missing_counter_reported(self):
        registry = MetricsRegistry()
        registry.expect_sum("ghost", ("nope",), ("also.nope",))
        failures = registry.check_invariants()
        assert failures and "missing" in failures[0]

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(1, 10, 100))
        for value in (0, 1, 5, 50, 500):
            hist.observe(value)
        assert registry.histogram("lat", bounds=(1, 10, 100)) is hist
        snap = registry.snapshot()
        assert snap["lat.count"] == 5
        assert snap["lat.sum"] == 556
        assert snap["lat.bucket.le_1"] == 2
        assert snap["lat.bucket.le_10"] == 3
        assert snap["lat.bucket.le_100"] == 4
        assert snap["lat.bucket.le_inf"] == 5


class TestObservation:
    def test_fresh_registry_by_default(self):
        obs = Observation()
        assert isinstance(obs.registry, MetricsRegistry)
        assert obs.snapshot() == {}

    def test_simulation_registers_and_passes_invariants(self):
        from repro.tcor.system import simulate_tcor
        from repro.workloads.suite import BENCHMARKS, build_workload

        workload = build_workload(BENCHMARKS["CCS"], scale=0.05)
        obs = Observation()
        result = simulate_tcor(workload, obs=obs)
        snap = obs.snapshot()
        assert snap["live.system.pb_l2_reads"] == result.pb_l2_reads
        assert snap["live.l2.accesses"] > 0
        assert obs.registry.check_invariants() == []
