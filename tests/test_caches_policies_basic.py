"""LRU, MRU, FIFO, Random and PLRU policies via a small cache."""

import pytest

from repro.caches.policies import make_policy
from repro.caches.set_assoc import SetAssociativeCache


def small_cache(policy_name: str, ways: int = 4, **kwargs) -> SetAssociativeCache:
    return SetAssociativeCache(num_sets=1, ways=ways, line_bytes=64,
                               policy=make_policy(policy_name, **kwargs))


def touch(cache: SetAssociativeCache, *lines: int):
    for line in lines:
        cache.access(line * 64)


class TestLRU:
    def test_evicts_least_recent(self):
        cache = small_cache("lru")
        touch(cache, 0, 1, 2, 3)
        touch(cache, 0)          # refresh 0
        result = cache.access(4 * 64)
        assert result.evicted.tag == 1

    def test_hit_does_not_evict(self):
        cache = small_cache("lru")
        touch(cache, 0, 1, 2, 3)
        assert cache.access(2 * 64).hit

    def test_sequence_miss_count(self):
        cache = small_cache("lru", ways=2)
        touch(cache, 0, 1, 0, 2, 0, 1)
        # 0m 1m 0h 2m(evict 1) 0h 1m(evict 2)
        assert cache.stats.misses == 4
        assert cache.stats.hits == 2


class TestMRU:
    def test_evicts_most_recent(self):
        cache = small_cache("mru")
        touch(cache, 0, 1, 2, 3)
        touch(cache, 1)
        result = cache.access(4 * 64)
        assert result.evicted.tag == 1

    def test_mru_worse_than_lru_on_looping_stream(self):
        # A cyclic stream longer than the cache: MRU famously beats LRU
        # here, which is why the comparison needs the PB stream, not toys.
        stream = list(range(6)) * 20
        lru = small_cache("lru")
        mru = small_cache("mru")
        for line in stream:
            lru.access(line * 64)
            mru.access(line * 64)
        assert mru.stats.misses < lru.stats.misses  # LRU thrashes loops


class TestFIFO:
    def test_hits_do_not_refresh(self):
        cache = small_cache("fifo", ways=2)
        touch(cache, 0, 1)
        touch(cache, 0)          # hit; still first in
        result = cache.access(2 * 64)
        assert result.evicted.tag == 0


class TestRandom:
    def test_deterministic_with_seed(self):
        a = small_cache("random", seed=42)
        b = small_cache("random", seed=42)
        for line in range(32):
            ra = a.access(line * 64)
            rb = b.access(line * 64)
            assert (ra.evicted and ra.evicted.tag) == \
                (rb.evicted and rb.evicted.tag)

    def test_victim_among_candidates(self):
        cache = small_cache("random", seed=1)
        touch(cache, 0, 1, 2, 3)
        result = cache.access(9 * 64)
        assert result.evicted.tag in (0, 1, 2, 3)


class TestPLRU:
    def test_requires_power_of_two_ways(self):
        with pytest.raises(ValueError):
            small_cache("plru", ways=3)

    def test_fill_order_victim_is_lru(self):
        # After a pure fill 0,1,2,3, tree-PLRU and true LRU agree: evict 0.
        cache = small_cache("plru", ways=4)
        touch(cache, 0, 1, 2, 3)
        result = cache.access(4 * 64)
        assert result.evicted.tag == 0

    def test_tree_approximation_diverges_from_lru(self):
        # The classic tree-PLRU imprecision: touching 0,1,2 after the fill
        # leaves the root pointing at the *left* half (last touch was on
        # the right), so the victim is 0 — not the true LRU line 3.
        cache = small_cache("plru", ways=4)
        touch(cache, 0, 1, 2, 3)
        touch(cache, 0, 1, 2)
        result = cache.access(4 * 64)
        assert result.evicted.tag == 0

    def test_behaves_sanely_on_mixed_stream(self):
        import random
        rng = random.Random(7)
        plru = small_cache("plru", ways=8)
        lru = small_cache("lru", ways=8)
        stream = [rng.randrange(12) for _ in range(2000)]
        for line in stream:
            plru.access(line * 64)
            lru.access(line * 64)
        # PLRU approximates LRU within a modest margin.
        assert plru.stats.misses <= lru.stats.misses * 1.3
