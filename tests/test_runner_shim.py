"""The PEP 562 deprecation shim on ``repro.experiments.runner``.

The module must stay importable warning-free (it is the
``tcor-experiments`` console entry point), while reaching for any of
the moved names warns and forwards to ``repro.experiments.driver``.
"""

from __future__ import annotations

import importlib
import warnings

import pytest

from repro.experiments import driver, runner


class TestRunnerShim:
    def test_plain_import_is_warning_free(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(runner)
        assert [w for w in caught
                if issubclass(w.category, DeprecationWarning)] == []

    def test_entry_point_is_the_driver_main(self):
        assert runner.main is driver.main
        assert runner.__all__ == ["main"]

    @pytest.mark.parametrize("name", runner._MOVED)
    def test_moved_names_warn_and_forward(self, name):
        with pytest.warns(DeprecationWarning, match=name):
            forwarded = getattr(runner, name)
        assert forwarded is getattr(driver, name)

    def test_legacy_import_statement_still_works(self):
        with pytest.warns(DeprecationWarning):
            from repro.experiments.runner import run_experiments
        assert run_experiments is driver.run_experiments

    def test_unknown_attribute_raises_cleanly(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(AttributeError, match="no_such_name"):
                runner.no_such_name
        assert [w for w in caught
                if issubclass(w.category, DeprecationWarning)] == []

    def test_warning_names_the_supported_surface(self):
        with pytest.warns(DeprecationWarning,
                          match=r"repro\.api|driver"):
            runner.run_experiments
