"""End-to-end acceptance: ``tcor-experiments --trace`` on fig10.

The issue's bar: a traced fig10 run must produce a JSONL stream whose
per-tile aggregate exactly reproduces the registry counters, and the
registry's conservation invariants must hold over the dump.
"""

import json

import pytest

from repro.experiments.driver import main
from repro.obs import load_metrics, read_trace, summarize_trace
from repro.obs.events import CacheAccess, OptDecision
from repro.obs.trace import SUMMARY_COUNTERS

# Trace counter -> registry counter under the same live.<cache> prefix.
_EQUIVALENT = {
    "l2": {"accesses": "accesses", "misses": "misses"},
    "attribute_cache": {"reads": "reads", "misses": "read_misses",
                        "writes": "writes", "opt_bypasses": "write_bypasses",
                        "opt_evictions": "evictions"},
    "primitive_list": {"accesses": "accesses", "misses": "misses"},
    "tile": {"accesses": "accesses", "misses": "misses"},
}


@pytest.fixture(scope="module")
def traced_fig10(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fig10")
    trace_path = str(tmp / "fig10.jsonl")
    metrics_path = str(tmp / "fig10_metrics.json")
    code = main(["--experiment", "fig10", "--scale", "0.2",
                 "--trace", trace_path, "--metrics-out", metrics_path])
    assert code == 0
    return trace_path, metrics_path


def test_trace_file_is_valid_jsonl(traced_fig10):
    trace_path, _ = traced_fig10
    with open(trace_path) as handle:
        records = [json.loads(line) for line in handle]
    assert records and all("type" in record for record in records)
    events = list(read_trace(trace_path))
    assert len(events) == len(records)
    # fig10 is the paper's OPT worked example: the stream must carry
    # both plain cache accesses (LRU side) and OPT decisions (TCOR side).
    assert any(isinstance(event, CacheAccess) for event in events)
    assert any(isinstance(event, OptDecision) for event in events)


def test_per_tile_aggregate_reproduces_registry(traced_fig10):
    trace_path, metrics_path = traced_fig10
    summary = summarize_trace(trace_path)
    metrics = load_metrics(metrics_path)
    checked = 0
    for cache in summary.summary():
        totals = summary.cache_totals(cache)
        for trace_counter, registry_counter in \
                _EQUIVALENT.get(cache, {}).items():
            name = f"live.{cache}.{registry_counter}"
            if name not in metrics:
                continue
            assert totals[trace_counter] == metrics[name], name
            checked += 1
    assert checked > 0, "no trace counter had a registry counterpart"


def test_metrics_dump_passes_conservation(traced_fig10):
    _, metrics_path = traced_fig10
    metrics = load_metrics(metrics_path)
    for prefix in {name.rsplit(".", 1)[0] for name in metrics
                   if name.startswith("live.")}:
        cell = {name.rsplit(".", 1)[1]: value
                for name, value in metrics.items()
                if name.rsplit(".", 1)[0] == prefix}
        if {"accesses", "reads", "writes"} <= cell.keys():
            assert cell["accesses"] == cell["reads"] + cell["writes"], prefix
        if {"misses", "read_misses", "write_misses"} <= cell.keys():
            assert cell["misses"] \
                == cell["read_misses"] + cell["write_misses"], prefix


def test_summary_counters_cover_sink_cells(traced_fig10):
    trace_path, _ = traced_fig10
    summary = summarize_trace(trace_path)
    for cache, cells in summary.summary().items():
        for cell in cells.values():
            assert set(cell) <= set(SUMMARY_COUNTERS), cache
