"""Engine behaviour: discovery, caching, suppression scopes, reporters,
CLI exit codes."""

from __future__ import annotations

import json
from textwrap import dedent

import pytest

from repro.lint import Violation, all_rules, lint_paths
from repro.lint.cli import main
from repro.lint.engine import discover_files, rules_signature
from repro.lint.reporters import render_json, render_text

BAD_SOURCE = """\
import random

def pick(items):
    return random.choice(items)
"""

CLEAN_SOURCE = """\
import random

RNG = random.Random(7)

def pick(items):
    return RNG.choice(items)
"""


def write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dedent(source))
    return path


class TestDiscovery:
    def test_skips_caches_and_egg_info(self, tmp_path):
        write(tmp_path, "pkg/mod.py", "x = 1\n")
        write(tmp_path, "pkg/__pycache__/mod.cpython-311.py", "x = 1\n")
        write(tmp_path, "pkg.egg-info/junk.py", "x = 1\n")
        write(tmp_path, ".pytest_cache/junk.py", "x = 1\n")
        files = discover_files([str(tmp_path)])
        assert [f.name for f in files] == ["mod.py"]

    def test_explicit_file(self, tmp_path):
        path = write(tmp_path, "one.py", "x = 1\n")
        assert discover_files([str(path)]) == [path]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_files([str(tmp_path / "no_such_dir")])


class TestCache:
    def test_second_run_hits_cache(self, tmp_path):
        write(tmp_path, "sim.py", BAD_SOURCE)
        cache_file = tmp_path / ".lint-cache.json"
        first = lint_paths([str(tmp_path)], root=tmp_path,
                           cache_file=cache_file)
        second = lint_paths([str(tmp_path)], root=tmp_path,
                            cache_file=cache_file)
        assert first.files_from_cache == 0
        assert second.files_from_cache == 1
        assert [v.as_dict() for v in first.violations] == \
            [v.as_dict() for v in second.violations]

    def test_edit_invalidates_entry(self, tmp_path):
        path = write(tmp_path, "sim.py", BAD_SOURCE)
        cache_file = tmp_path / ".lint-cache.json"
        first = lint_paths([str(tmp_path)], root=tmp_path,
                           cache_file=cache_file)
        assert len(first.violations) == 1
        path.write_text(CLEAN_SOURCE)
        second = lint_paths([str(tmp_path)], root=tmp_path,
                            cache_file=cache_file)
        assert second.files_from_cache == 0
        assert second.violations == []

    def test_cached_project_facts_still_finalized(self, tmp_path):
        # The SIM005 evidence lives in two files; replaying one from
        # cache must not lose its facts.
        write(tmp_path, "stats.py", """
            from dataclasses import dataclass
            @dataclass
            class CacheStats:
                hits_ever: int = 0
                def as_dict(self):
                    return {"hits_ever": self.hits_ever}
        """)
        write(tmp_path, "cache.py", """
            def touch(stats):
                stats.hits_ever += 1
        """)
        cache_file = tmp_path / ".lint-cache.json"
        first = lint_paths([str(tmp_path)], root=tmp_path,
                           cache_file=cache_file)
        second = lint_paths([str(tmp_path)], root=tmp_path,
                            cache_file=cache_file)
        assert first.violations == [] and second.violations == []
        assert second.files_from_cache == 2

    def test_corrupt_cache_ignored(self, tmp_path):
        write(tmp_path, "sim.py", BAD_SOURCE)
        cache_file = tmp_path / ".lint-cache.json"
        cache_file.write_text("{not json")
        result = lint_paths([str(tmp_path)], root=tmp_path,
                            cache_file=cache_file)
        assert len(result.violations) == 1

    def test_signature_is_stable(self):
        assert rules_signature() == rules_signature()


class TestSuppression:
    def test_file_level_suppression(self, tmp_path):
        write(tmp_path, "sim.py", """
            # lint: disable-file=SIM001
            import random
            a = random.random()
            b = random.random()
        """)
        result = lint_paths([str(tmp_path)], root=tmp_path, use_cache=False)
        assert result.violations == []

    def test_line_suppression_is_per_line(self, tmp_path):
        write(tmp_path, "sim.py", """
            import random
            a = random.random()  # lint: disable=SIM001
            b = random.random()
        """)
        result = lint_paths([str(tmp_path)], root=tmp_path, use_cache=False)
        assert len(result.violations) == 1

    def test_disable_all(self, tmp_path):
        write(tmp_path, "sim.py", """
            import random
            a = random.random()  # lint: disable=all
        """)
        result = lint_paths([str(tmp_path)], root=tmp_path, use_cache=False)
        assert result.violations == []


class TestDecoratorSuppression:
    """A decorator list and its ``def`` line are one statement: a
    suppression anywhere on the span must cover findings anchored
    anywhere on it, regardless of comment placement."""

    def test_comment_on_decorator_line_covers_the_def(self, tmp_path):
        write(tmp_path, "sim.py", """
            import functools

            @functools.lru_cache  # lint: disable=SIM002
            def accumulate(item, into=[]):
                return into
        """)
        result = lint_paths([str(tmp_path)], root=tmp_path, use_cache=False)
        assert result.violations == []

    def test_comment_on_the_def_covers_the_decorator_line(self, tmp_path):
        write(tmp_path, "sim.py", """
            import functools
            import random

            @functools.lru_cache(maxsize=random.randint(4, 8))
            def pick(item):  # lint: disable=SIM001
                return item
        """)
        result = lint_paths([str(tmp_path)], root=tmp_path, use_cache=False)
        assert result.violations == []

    def test_span_spreading_does_not_leak_past_the_def(self, tmp_path):
        write(tmp_path, "sim.py", """
            import functools
            import random

            @functools.lru_cache  # lint: disable=SIM001
            def pick(items):
                return items

            stray = random.random()
        """)
        result = lint_paths([str(tmp_path)], root=tmp_path, use_cache=False)
        assert [v.rule for v in result.violations] == ["SIM001"]


class TestSelection:
    def test_select_runs_only_named_rules(self, tmp_path):
        write(tmp_path, "sim.py", """
            import random
            def pick(items, into=[]):
                into.append(random.choice(items))
                return into
        """)
        everything = lint_paths([str(tmp_path)], root=tmp_path,
                                use_cache=False)
        only_sim002 = lint_paths([str(tmp_path)], root=tmp_path,
                                 use_cache=False, select={"SIM002"})
        assert {v.rule for v in everything.violations} == \
            {"SIM001", "SIM002"}
        assert {v.rule for v in only_sim002.violations} == {"SIM002"}

    def test_ignore_drops_named_rules(self, tmp_path):
        write(tmp_path, "sim.py", """
            import random
            x = random.random()
        """)
        result = lint_paths([str(tmp_path)], root=tmp_path,
                            use_cache=False, ignore={"SIM001"})
        assert result.violations == []


class TestParseErrors:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        write(tmp_path, "broken.py", "def oops(:\n")
        result = lint_paths([str(tmp_path)], root=tmp_path, use_cache=False)
        assert [v.rule for v in result.violations] == ["PARSE"]


class TestReporters:
    def _result(self, tmp_path):
        write(tmp_path, "sim.py", BAD_SOURCE)
        return lint_paths([str(tmp_path)], root=tmp_path, use_cache=False)

    def test_text_format(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "sim.py:4:11: SIM001" in text
        assert "1 violation (1 files checked)" in text

    def test_json_format(self, tmp_path):
        payload = json.loads(render_json(self._result(tmp_path)))
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["violations"][0]["rule"] == "SIM001"
        assert payload["violations"][0]["path"] == "sim.py"

    def test_violations_sorted_by_location(self, tmp_path):
        write(tmp_path, "b.py", "import random\nx = random.random()\n")
        write(tmp_path, "a.py", "import random\nx = random.random()\n")
        result = lint_paths([str(tmp_path)], root=tmp_path, use_cache=False)
        assert [v.path for v in result.violations] == ["a.py", "b.py"]


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys, monkeypatch):
        write(tmp_path, "sim.py", CLEAN_SOURCE)
        monkeypatch.chdir(tmp_path)
        assert main([str(tmp_path), "--no-cache"]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        write(tmp_path, "sim.py", BAD_SOURCE)
        monkeypatch.chdir(tmp_path)
        assert main([str(tmp_path), "--no-cache"]) == 1
        assert "SIM001" in capsys.readouterr().out

    def test_no_fail_flag(self, tmp_path, capsys, monkeypatch):
        write(tmp_path, "sim.py", BAD_SOURCE)
        monkeypatch.chdir(tmp_path)
        assert main([str(tmp_path), "--no-cache",
                     "--no-fail-on-violation"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.code in out

    def test_json_output(self, tmp_path, capsys, monkeypatch):
        write(tmp_path, "sim.py", BAD_SOURCE)
        monkeypatch.chdir(tmp_path)
        main([str(tmp_path), "--no-cache", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False

    def test_typoed_path_is_a_usage_error(self, tmp_path, capsys):
        # A vacuous "0 violations (0 files checked)" pass in CI would
        # be worse than a crash.
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "no_such_dir"), "--no-cache"])
        assert excinfo.value.code == 2

    def test_unknown_rule_code_is_a_usage_error(self, tmp_path, capsys):
        write(tmp_path, "sim.py", BAD_SOURCE)
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--no-cache", "--select", "SIM999"])
        assert excinfo.value.code == 2


class TestViolation:
    def test_format_and_dict_round_trip(self):
        violation = Violation(path="a.py", line=3, col=7,
                              rule="SIM001", message="boom")
        assert violation.format() == "a.py:3:7: SIM001 boom"
        assert Violation(**violation.as_dict()) == violation


def test_registry_has_the_ten_sim_rules():
    registered = {rule.code for rule in all_rules()}
    assert registered == {f"SIM{i:03d}" for i in range(1, 11)}
