"""Property-based tests on the rasterizer and raster pipeline."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.config import ScreenConfig
from repro.geometry.overlap import tiles_overlapped_by
from repro.geometry.primitives import Primitive, Vertex
from repro.raster.rasterizer import rasterize_in_tile
from repro.raster.zbuffer import TileZBuffer
from repro.raster.fragments import Quad

SCREEN = ScreenConfig(96, 96, 32)  # 3x3 tiles

coords = st.floats(min_value=-20, max_value=116, allow_nan=False,
                   allow_infinity=False)
depths = st.floats(min_value=0.0, max_value=0.99, allow_nan=False)


@st.composite
def triangles(draw):
    return Primitive(
        0,
        Vertex(draw(coords), draw(coords), draw(depths)),
        Vertex(draw(coords), draw(coords), draw(depths)),
        Vertex(draw(coords), draw(coords), draw(depths)),
    )


@given(prim=triangles(), tile=st.integers(0, 8))
@settings(max_examples=120, deadline=None)
def test_fragments_stay_inside_their_tile(prim, tile):
    rect_x = (tile % 3) * 32
    rect_y = (tile // 3) * 32
    for quad in rasterize_in_tile(prim, SCREEN, tile):
        for fragment in quad.fragments():
            assert rect_x <= fragment.x < rect_x + 32
            assert rect_y <= fragment.y < rect_y + 32


@given(prim=triangles(), tile=st.integers(0, 8))
@settings(max_examples=120, deadline=None)
def test_fragments_inside_the_triangle_bbox(prim, tile):
    bbox = prim.bounding_box()
    for quad in rasterize_in_tile(prim, SCREEN, tile):
        for fragment in quad.fragments():
            center_x = fragment.x + 0.5
            center_y = fragment.y + 0.5
            assert bbox.min_x - 1 <= center_x <= bbox.max_x + 1
            assert bbox.min_y - 1 <= center_y <= bbox.max_y + 1


@given(prim=triangles())
@settings(max_examples=100, deadline=None)
def test_rasterized_tiles_are_binned_tiles(prim):
    """A tile producing fragments must be in the binner's coverage (the
    binner is conservative; the rasterizer is exact)."""
    binned = set(tiles_overlapped_by(prim, SCREEN))
    for tile in range(SCREEN.num_tiles):
        if rasterize_in_tile(prim, SCREEN, tile):
            assert tile in binned


@given(prim=triangles(), tile=st.integers(0, 8))
@settings(max_examples=100, deadline=None)
def test_depths_interpolate_within_vertex_range(prim, tile):
    zs = [v.z for v in prim.vertices]
    lo, hi = min(zs), max(zs)
    for quad in rasterize_in_tile(prim, SCREEN, tile):
        for fragment in quad.fragments():
            assert lo - 1e-6 <= fragment.depth <= hi + 1e-6


@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15),
                          st.floats(0.01, 0.99, allow_nan=False)),
                min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_zbuffer_is_a_running_minimum(writes):
    zbuffer = TileZBuffer(32)
    best: dict[tuple[int, int], float] = {}
    for base_x, base_y, depth in writes:
        quad = Quad(base_x * 2, base_y * 2, 0xF, (depth,) * 4,
                    primitive_id=0)
        zbuffer.test_and_update(quad, 0, 0)
        for dx in (0, 1):
            for dy in (0, 1):
                key = (base_x * 2 + dx, base_y * 2 + dy)
                best[key] = min(best.get(key, 1.0), depth)
    for (x, y), expected in best.items():
        assert zbuffer.depth_at(x, y) == expected
