"""SHiP and Hawkeye (the related-work predictive policies)."""

import random

import pytest

from repro.caches.fully_assoc import fully_associative_cache
from repro.caches.policies import BeladyOPT, make_policy
from repro.caches.policies.hawkeye import HawkeyePolicy, OPTgen
from repro.caches.policies.ship import SHiPPolicy
from repro.caches.set_assoc import SetAssociativeCache


def run(trace, policy, num_sets=8, ways=4):
    cache = SetAssociativeCache(num_sets, ways, 64, policy)
    for line in trace:
        cache.access(line * 64)
    return cache.stats.misses


@pytest.fixture(scope="module")
def mixed_trace():
    """Hot lines from one region + a streaming scan from another."""
    rng = random.Random(23)
    trace = []
    for step in range(1500):
        trace.append(rng.randrange(24))          # hot region near 0
        trace.append((1 << 16) + step)           # one-shot scan region
    return trace


class TestSHiP:
    def test_learns_to_bypass_streaming_signature(self, mixed_trace):
        ship = SHiPPolicy()
        ship_misses = run(mixed_trace, ship)
        lru_misses = run(mixed_trace, make_policy("lru"))
        assert ship_misses < lru_misses

    def test_counter_saturation(self):
        policy = SHiPPolicy(counter_bits=2)
        signature = policy._signature(0)
        for _ in range(10):
            policy._shct[signature] = min(policy.counter_max,
                                          policy._counter(signature) + 1)
        assert policy._counter(signature) == policy.counter_max

    def test_reset(self, mixed_trace):
        policy = SHiPPolicy()
        run(mixed_trace[:500], policy)
        policy.reset()
        assert not policy._shct and not policy._line_signature


class TestOPTgen:
    def test_hit_within_capacity(self):
        optgen = OPTgen(capacity=2, window=64)
        optgen.access(1)
        optgen.access(2)
        assert optgen.access(1) is True    # interval fits in capacity 2

    def test_miss_when_interval_overcommitted(self):
        optgen = OPTgen(capacity=1, window=64)
        optgen.access(1)
        optgen.access(2)
        assert optgen.access(2) is True     # [1,2] fits alone
        assert optgen.access(1) is False    # overlaps 2's occupied step

    def test_cold_access_is_none(self):
        assert OPTgen(capacity=4).access(99) is None

    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            OPTgen(capacity=0)


class TestHawkeye:
    def test_beats_lru_on_mixed_stream(self, mixed_trace):
        hawkeye_misses = run(mixed_trace, HawkeyePolicy())
        lru_misses = run(mixed_trace, make_policy("lru"))
        assert hawkeye_misses < lru_misses

    def test_never_beats_offline_belady(self, mixed_trace):
        capacity = 32
        belady = fully_associative_cache(capacity * 64, 64,
                                         BeladyOPT.from_trace(mixed_trace))
        for line in mixed_trace:
            belady.access(line * 64)
        hawkeye = fully_associative_cache(capacity * 64, 64, HawkeyePolicy())
        for line in mixed_trace:
            hawkeye.access(line * 64)
        assert belady.stats.misses <= hawkeye.stats.misses

    def test_factory_names(self):
        assert make_policy("ship").name == "ship"
        assert make_policy("hawkeye").name == "hawkeye"
