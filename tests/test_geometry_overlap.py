"""Exact tile-overlap (binning) tests."""

import pytest

from repro.config import ScreenConfig
from repro.geometry.overlap import (
    tile_rect,
    tiles_overlapped_by,
    triangle_overlaps_rect,
)
from repro.geometry.primitives import BoundingBox, Primitive, Vertex
from tests.conftest import make_triangle


@pytest.fixture
def screen() -> ScreenConfig:
    return ScreenConfig(128, 128, 32)  # 4x4 tiles


class TestTileRect:
    def test_interior_tile(self, screen):
        rect = tile_rect(screen, 5)  # (x=1, y=1)
        assert (rect.min_x, rect.min_y, rect.max_x, rect.max_y) == \
            (32, 32, 64, 64)

    def test_edge_tile_clipped_to_screen(self):
        screen = ScreenConfig(100, 100, 32)  # 4x4 tiles, last column narrow
        rect = tile_rect(screen, 3)
        assert rect.max_x == 100

    def test_out_of_range(self, screen):
        with pytest.raises(ValueError):
            tile_rect(screen, screen.num_tiles)


class TestTriangleRectOverlap:
    def test_triangle_inside_rect(self):
        rect = BoundingBox(0, 0, 100, 100)
        assert triangle_overlaps_rect(make_triangle(0, 10, 10, 5), rect)

    def test_rect_inside_triangle(self):
        big = Primitive(0, Vertex(-100, -100), Vertex(300, -100),
                        Vertex(-100, 300))
        assert triangle_overlaps_rect(big, BoundingBox(10, 10, 20, 20))

    def test_edge_crossing_without_contained_points(self):
        # A thin triangle slicing through a rect: no vertex of either
        # shape is inside the other.
        sliver = Primitive(0, Vertex(-10, 15), Vertex(50, 15),
                           Vertex(-10, 16))
        assert triangle_overlaps_rect(sliver, BoundingBox(0, 0, 32, 32))

    def test_disjoint(self):
        assert not triangle_overlaps_rect(
            make_triangle(0, 200, 200, 10), BoundingBox(0, 0, 32, 32))

    def test_touching_corner_counts(self):
        # Triangle vertex exactly on the rect corner.
        prim = Primitive(0, Vertex(32, 32), Vertex(40, 32), Vertex(32, 40))
        assert triangle_overlaps_rect(prim, BoundingBox(0, 0, 32, 32))


class TestTilesOverlappedBy:
    def test_single_tile_triangle(self, screen):
        assert tiles_overlapped_by(make_triangle(0, 4, 4, 8), screen) == [0]

    def test_tile_straddling_triangle(self, screen):
        tiles = tiles_overlapped_by(make_triangle(0, 28, 28, 8), screen)
        assert tiles == [0, 1, 4, 5]

    def test_bbox_overestimates_are_filtered(self, screen):
        # A right triangle whose bbox spans 2x2 tiles but whose
        # hypotenuse (x + y = 62) misses the diagonal tile at (32, 32).
        prim = Primitive(0, Vertex(2, 2), Vertex(60, 2), Vertex(2, 60))
        tiles = tiles_overlapped_by(prim, screen)
        assert tiles == [0, 1, 4]  # bbox includes tile 5; the area does not

    def test_offscreen_primitive_is_clipped(self, screen):
        assert tiles_overlapped_by(make_triangle(0, 500, 500, 10), screen) == []
        assert tiles_overlapped_by(make_triangle(0, -50, -50, 10), screen) == []

    def test_full_screen_triangle_covers_everything(self, screen):
        prim = Primitive(0, Vertex(-200, -200), Vertex(600, -200),
                         Vertex(-200, 600))
        assert tiles_overlapped_by(prim, screen) == \
            list(range(screen.num_tiles))

    def test_coverage_is_sorted_row_major(self, screen):
        tiles = tiles_overlapped_by(make_triangle(0, 20, 20, 60), screen)
        assert tiles == sorted(tiles)
