"""Background traffic model."""

from repro.config import ScreenConfig
from repro.workloads.background import BackgroundTrafficModel
from repro.workloads.suite import BENCHMARKS
from repro.workloads.trace import Op, Region


def model_for(alias="CCS", scale=0.25, screen=None) -> BackgroundTrafficModel:
    return BackgroundTrafficModel(BENCHMARKS[alias],
                                  screen or ScreenConfig(), scale=scale)


class TestTileAccesses:
    def test_deterministic_per_tile(self):
        model = model_for()
        assert model.tile_accesses(7) == model.tile_accesses(7)

    def test_regions_and_ops(self):
        accesses = model_for().tile_accesses(3)
        assert all(a.op is Op.READ for a in accesses)
        regions = {a.region for a in accesses}
        assert regions <= {Region.TEXTURE, Region.INSTRUCTION}
        assert Region.TEXTURE in regions

    def test_texture_volume_scales_with_footprint(self):
        rok = model_for("RoK", scale=1.0)   # 6.8 MiB textures
        swa = model_for("SWa", scale=1.0)   # 0.4 MiB textures
        assert rok.texture_accesses_per_tile > swa.texture_accesses_per_tile

    def test_different_tiles_touch_different_windows(self):
        model = model_for(scale=1.0)
        a = {x.address for x in model.tile_accesses(0)
             if x.region is Region.TEXTURE}
        b = {x.address for x in model.tile_accesses(700)
             if x.region is Region.TEXTURE}
        assert a != b


class TestPrimitiveAccesses:
    def test_vertex_region_and_determinism(self):
        model = model_for()
        accesses = model.primitive_accesses(5)
        assert all(a.region is Region.VERTEX for a in accesses)
        assert accesses == model.primitive_accesses(5)

    def test_addresses_walk_the_vertex_buffer(self):
        model = model_for()
        first = model.primitive_accesses(0)
        later = model.primitive_accesses(100)
        if first and later:
            assert later[0].address > first[0].address


class TestFramebuffer:
    def test_writes_scale(self):
        full = model_for(scale=1.0).framebuffer_writes_per_tile()
        half = model_for(scale=0.5).framebuffer_writes_per_tile()
        assert half < full

    def test_compression_below_raw(self):
        # Raw 32x32x4B tile is 64 lines; compression keeps it below that.
        assert model_for(scale=1.0).framebuffer_writes_per_tile() < 64


class TestL1Estimates:
    def test_keys_and_magnitudes(self):
        model = model_for(scale=1.0)
        estimates = model.l1_access_estimates(num_primitives=1000)
        assert estimates["vertex_l1"] == 3000
        assert estimates["instruction_l1"] > estimates["texture_l1"] / 2
        assert all(v >= 0 for v in estimates.values())
