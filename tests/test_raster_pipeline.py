"""Z-Buffer, blending and the tile-sequential pipeline."""

import numpy as np
import pytest

from repro.config import ScreenConfig
from repro.geometry.primitives import Primitive, Vertex
from repro.geometry.scene import Scene
from repro.geometry.traversal import TraversalOrder
from repro.pbuffer.builder import build_parameter_buffer
from repro.raster.blend import BlendMode, blend
from repro.raster.fragments import Quad
from repro.raster.pipeline import RasterPipeline, render_frame
from repro.raster.zbuffer import TileZBuffer

SCREEN = ScreenConfig(64, 64, 32)


class TestZBuffer:
    def test_nearer_wins(self):
        zbuffer = TileZBuffer(32)
        far_quad = Quad(0, 0, 0xF, (0.8, 0.8, 0.8, 0.8), primitive_id=0)
        near_quad = Quad(0, 0, 0xF, (0.2, 0.2, 0.2, 0.2), primitive_id=1)
        assert zbuffer.test_and_update(far_quad, 0, 0) == 0xF
        assert zbuffer.test_and_update(near_quad, 0, 0) == 0xF
        # The far quad resubmitted is fully rejected.
        assert zbuffer.test_and_update(far_quad, 0, 0) == 0

    def test_partial_survival(self):
        zbuffer = TileZBuffer(32)
        blocker = Quad(0, 0, 0b0011, (0.1, 0.1, 0.0, 0.0), primitive_id=0)
        zbuffer.test_and_update(blocker, 0, 0)
        challenger = Quad(0, 0, 0xF, (0.5, 0.5, 0.5, 0.5), primitive_id=1)
        assert zbuffer.test_and_update(challenger, 0, 0) == 0b1100

    def test_clear(self):
        zbuffer = TileZBuffer(32)
        zbuffer.test_and_update(Quad(0, 0, 0xF, (0.5,) * 4, 0), 0, 0)
        assert zbuffer.occupancy() > 0
        zbuffer.clear()
        assert zbuffer.occupancy() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TileZBuffer(0)
        with pytest.raises(ValueError):
            TileZBuffer(31)  # odd


class TestBlend:
    def test_replace(self):
        assert blend((1, 0, 0, 1), (0, 1, 0, 1)) == (1, 0, 0, 1)

    def test_alpha_half(self):
        out = blend((1.0, 0.0, 0.0, 0.5), (0.0, 0.0, 1.0, 1.0),
                    BlendMode.ALPHA)
        assert out[0] == pytest.approx(0.5)
        assert out[2] == pytest.approx(0.5)

    def test_alpha_opaque_source_replaces(self):
        out = blend((0.2, 0.4, 0.6, 1.0), (1, 1, 1, 1), BlendMode.ALPHA)
        assert out == pytest.approx((0.2, 0.4, 0.6, 1.0))

    def test_additive_clamps(self):
        out = blend((0.9, 0.9, 0.9, 1.0), (0.9, 0.2, 0.0, 1.0),
                    BlendMode.ADDITIVE)
        assert out[0] == 1.0 and out[1] == pytest.approx(1.0)


def two_triangle_scene() -> Scene:
    # A near red-ish triangle over a far one, overlapping mid-screen.
    return Scene(SCREEN, [
        Primitive(0, Vertex(4, 4, 0.8), Vertex(60, 4, 0.8),
                  Vertex(4, 60, 0.8)),
        Primitive(1, Vertex(10, 10, 0.2), Vertex(40, 10, 0.2),
                  Vertex(10, 40, 0.2)),
    ])


class TestPipeline:
    def test_framebuffer_written_only_under_geometry(self):
        image = render_frame(two_triangle_scene())
        assert image[8, 8, 3] > 0          # inside both triangles
        assert image[63, 63, 3] == 0.0     # empty corner

    def test_depth_order_ignores_submission_order(self):
        image = render_frame(two_triangle_scene())
        pb = build_parameter_buffer(two_triangle_scene())
        pipeline = RasterPipeline(pb)
        pipeline.render()
        # Pixel (12, 12) is covered by both; primitive 1 is nearer.
        near_color = image[12, 12]
        only_near = render_frame(Scene(SCREEN, [
            Primitive(0, Vertex(10, 10, 0.2), Vertex(40, 10, 0.2),
                      Vertex(10, 40, 0.2))
        ]))
        # Same procedural color function keyed by primitive id 1 vs 0, so
        # compare against a scene where the near triangle has id 1.
        assert image[12, 12, 3] == 1.0
        assert pipeline.stats.early_z_kill_ratio >= 0.0

    def test_early_z_kills_occluded_quads_when_drawn_front_to_back(self):
        # Near first, far second: the far triangle's overlapped quads die.
        scene = Scene(SCREEN, [
            Primitive(0, Vertex(10, 10, 0.2), Vertex(40, 10, 0.2),
                      Vertex(10, 40, 0.2)),
            Primitive(1, Vertex(10, 10, 0.8), Vertex(40, 10, 0.8),
                      Vertex(10, 40, 0.8)),
        ])
        pb = build_parameter_buffer(scene)
        pipeline = RasterPipeline(pb)
        pipeline.render()
        assert pipeline.stats.early_z_kill_ratio > 0.4

    def test_traversal_order_does_not_change_the_image(self):
        scene = two_triangle_scene()
        image_z = render_frame(scene, TraversalOrder.Z_ORDER)
        image_scan = render_frame(scene, TraversalOrder.SCANLINE)
        assert np.array_equal(image_z, image_scan)

    def test_render_deterministic(self):
        scene = two_triangle_scene()
        assert np.array_equal(render_frame(scene), render_frame(scene))

    def test_stats_accounting(self):
        pb = build_parameter_buffer(two_triangle_scene())
        pipeline = RasterPipeline(pb)
        pipeline.render()
        stats = pipeline.stats
        assert stats.tiles_rendered == SCREEN.num_tiles
        assert stats.quads_rasterized >= stats.quads_after_z
        assert stats.fragments_shaded > 0
        assert 0 < stats.framebuffer_flushes <= SCREEN.num_tiles

    def test_render_from_pb_equals_render_from_scene(self):
        """The Parameter Buffer round-trips geometry losslessly: rendering
        from the binned lists equals rasterizing every primitive against
        every tile directly."""
        scene = two_triangle_scene()
        from_pb = render_frame(scene)
        # Direct path: a PB built with full coverage (every tile lists
        # every primitive) must produce the same image — binning only
        # skips tiles a primitive cannot touch.
        pb = build_parameter_buffer(scene)
        for tiles, prim in zip(scene.coverage(), scene.primitives):
            assert tiles  # both triangles are on screen
        assert np.array_equal(from_pb, RasterPipeline(pb).render())
