"""The dead-line-aware L2: priority replacement and writeback suppression."""

import pytest

from repro.caches.hierarchy import MemoryCounters
from repro.caches.line import LineMeta
from repro.caches.set_assoc import SetAssociativeCache
from repro.tcor.l2_policy import (
    DeadLinePriorityPolicy,
    TcorSharedL2,
    TileProgress,
    line_is_dead,
)
from repro.workloads.trace import Region


def make_l2(ways=4, num_sets=1):
    progress = TileProgress()
    policy = DeadLinePriorityPolicy(progress)
    shared = TcorSharedL2(
        SetAssociativeCache(num_sets, ways, 64, policy),
        progress, MemoryCounters())
    return shared, progress


def pb_meta(last_tile, region=Region.PB_ATTRIBUTES):
    return LineMeta(region=region, last_tile_rank=last_tile)


def texture_meta():
    return LineMeta(region=Region.TEXTURE)


class TestDeadness:
    def test_progress_monotonic(self):
        progress = TileProgress()
        progress.tile_done(0)
        progress.tile_done(3)
        with pytest.raises(ValueError):
            progress.tile_done(1)

    def test_pb_line_dead_after_its_last_tile(self):
        progress = TileProgress()
        meta = pb_meta(last_tile=5)
        assert not line_is_dead(meta, progress)
        progress.tile_done(5)
        assert line_is_dead(meta, progress)

    def test_non_pb_lines_never_dead(self):
        progress = TileProgress()
        progress.tile_done(100)
        assert not line_is_dead(texture_meta(), progress)

    def test_untagged_pb_line_never_dead(self):
        progress = TileProgress()
        progress.tile_done(100)
        assert not line_is_dead(LineMeta(region=Region.PB_LISTS), progress)


class TestVictimPriority:
    def test_dead_pb_evicted_first(self):
        shared, progress = make_l2(ways=3)
        shared.access(0, is_write=True, meta=pb_meta(last_tile=0))
        shared.access(64, is_write=True, meta=pb_meta(last_tile=9))
        shared.access(128, is_write=False, meta=texture_meta())
        progress.tile_done(0)  # line 0 is now dead
        shared.access(192, is_write=False, meta=texture_meta())
        assert shared.l2.probe(0) is None
        assert shared.l2.probe(64) is not None

    def test_non_pb_evicted_before_live_pb(self):
        shared, _ = make_l2(ways=2)
        shared.access(0, is_write=True, meta=pb_meta(last_tile=9))
        shared.access(64, is_write=False, meta=texture_meta())
        shared.access(128, is_write=False, meta=texture_meta())
        assert shared.l2.probe(0) is not None   # live PB protected
        assert shared.l2.probe(64) is None      # texture evicted

    def test_lru_within_class(self):
        shared, _ = make_l2(ways=3)
        shared.access(0, is_write=False, meta=texture_meta())
        shared.access(64, is_write=False, meta=texture_meta())
        shared.access(128, is_write=False, meta=texture_meta())
        shared.access(0, is_write=False, meta=texture_meta())  # refresh
        shared.access(192, is_write=False, meta=texture_meta())
        assert shared.l2.probe(64) is None      # LRU texture evicted


class TestWritebackSuppression:
    def test_dead_dirty_line_not_written_back(self):
        shared, progress = make_l2(ways=1)
        shared.access(0, is_write=True, meta=pb_meta(last_tile=0))
        progress.tile_done(0)
        shared.access(64, is_write=False, meta=texture_meta())
        assert shared.memory.writes == 0
        assert shared.l2.stats.dead_writebacks_avoided == 1

    def test_live_dirty_line_is_written_back(self):
        shared, _ = make_l2(ways=1)
        shared.access(0, is_write=True, meta=pb_meta(last_tile=9))
        shared.access(64, is_write=False, meta=texture_meta())
        assert shared.memory.writes == 1

    def test_flush_suppresses_dead_writebacks(self):
        shared, progress = make_l2(ways=4)
        shared.access(0, is_write=True, meta=pb_meta(last_tile=0))
        shared.access(64, is_write=True, meta=pb_meta(last_tile=9))
        progress.tile_done(0)
        writebacks = shared.flush()
        assert writebacks == 1                  # only the live line
        assert shared.l2.stats.dead_writebacks_avoided == 1

    def test_write_miss_allocates_without_memory_fetch(self):
        shared, _ = make_l2()
        shared.access(0, is_write=True, meta=pb_meta(last_tile=3))
        assert shared.memory.reads == 0

    def test_read_miss_fetches(self):
        shared, _ = make_l2()
        shared.access(0, is_write=False, meta=texture_meta())
        assert shared.memory.reads == 1
