"""Property-based tests on the cache substrate (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.caches.fully_assoc import fully_associative_cache
from repro.caches.mattson import lru_miss_curve
from repro.caches.policies import BeladyOPT, make_policy
from repro.caches.set_assoc import SetAssociativeCache

traces = st.lists(st.integers(min_value=0, max_value=31),
                  min_size=1, max_size=400)
capacities = st.integers(min_value=1, max_value=32)


@given(trace=traces, capacity=capacities)
@settings(max_examples=60, deadline=None)
def test_belady_is_optimal_against_lru_fifo_random(trace, capacity):
    """OPT never misses more than any other policy (Mattson 1970)."""
    opt = fully_associative_cache(capacity * 64, 64,
                                  BeladyOPT.from_trace(trace))
    for line in trace:
        opt.access(line * 64)
    for name in ("lru", "fifo", "random", "mru"):
        other = fully_associative_cache(capacity * 64, 64, make_policy(name))
        for line in trace:
            other.access(line * 64)
        assert opt.stats.misses <= other.stats.misses


@given(trace=traces)
@settings(max_examples=60, deadline=None)
def test_mattson_curve_matches_direct_lru(trace):
    curve = lru_miss_curve(trace, [1, 3, 8, 32])
    for capacity, expected in curve.items():
        cache = fully_associative_cache(capacity * 64, 64,
                                        make_policy("lru"))
        for line in trace:
            cache.access(line * 64)
        assert cache.stats.misses == expected


@given(trace=traces)
@settings(max_examples=40, deadline=None)
def test_lru_inclusion_property(trace):
    """Fully associative LRU misses are monotone non-increasing in size."""
    curve = lru_miss_curve(trace, list(range(1, 33)))
    misses = [curve[c] for c in range(1, 33)]
    assert all(a >= b for a, b in zip(misses, misses[1:]))


@given(trace=traces, capacity=capacities)
@settings(max_examples=60, deadline=None)
def test_misses_at_least_compulsory(trace, capacity):
    """No policy can miss fewer times than the number of distinct lines."""
    for name in ("lru", "mru", "fifo", "srrip", "drrip", "random"):
        cache = fully_associative_cache(capacity * 64, 64, make_policy(name))
        for line in trace:
            cache.access(line * 64)
        assert cache.stats.misses >= len(set(trace))
        assert cache.stats.accesses == len(trace)


@given(trace=traces, ways=st.integers(min_value=1, max_value=8),
       num_sets=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=60, deadline=None)
def test_occupancy_never_exceeds_capacity(trace, ways, num_sets):
    cache = SetAssociativeCache(num_sets, ways, 64, make_policy("lru"))
    for line in trace:
        cache.access(line * 64, is_write=line % 2 == 0)
    assert cache.occupancy() <= num_sets * ways
    # Every resident line maps to the set it is stored in.
    for set_index, line in cache.iter_lines():
        assert cache.indexing.set_of(line.tag) == set_index


@given(trace=traces)
@settings(max_examples=40, deadline=None)
def test_flush_accounts_for_every_dirty_line(trace):
    cache = SetAssociativeCache(4, 2, 64, make_policy("lru"))
    dirty_written = set()
    for index, line in enumerate(trace):
        result = cache.access(line * 64, is_write=index % 3 == 0)
    resident_dirty = sum(line.dirty for _s, line in cache.iter_lines())
    flushed = cache.flush()
    assert sum(evicted.dirty for evicted in flushed) == resident_dirty
    assert cache.occupancy() == 0
