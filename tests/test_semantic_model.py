"""Project model: fact extraction, call resolution, dependency digests.

Fixtures are tiny multi-module "projects" fed to :class:`Program` as
``{path: facts}``, exactly how the semantic engine builds it.
"""

from __future__ import annotations

from textwrap import dedent

from repro.lint.core import FileContext
from repro.lint.semantic.model import (Program, dependency_signatures,
                                       extract_module_facts,
                                       module_name_for, project_imports)


def program_of(sources: dict[str, str]) -> Program:
    facts = {path: extract_module_facts(
        FileContext.parse(path, dedent(source)))
        for path, source in sources.items()}
    return Program(facts)


class TestModuleNames:
    def test_src_prefix_and_init_are_stripped(self):
        assert module_name_for("src/repro/tcor/system.py") \
            == "repro.tcor.system"
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"
        assert module_name_for("benchmarks/bench_sim.py") \
            == "benchmarks.bench_sim"


class TestCallResolution:
    def test_module_level_and_self_method_calls(self):
        program = program_of({"src/pkg/a.py": """
            class Worker:
                def helper(self):
                    return 1

                def run(self):
                    return self.helper()

            def top():
                return Worker()
        """})
        assert program.resolve_call("pkg.a", "Worker.run", "self.helper") \
            == "pkg.a:Worker.helper"
        # A bare class call resolves to its __init__ or the class itself.
        assert program.resolve_call("pkg.a", "top", "Worker") \
            == "pkg.a:Worker"

    def test_cross_module_import_alias(self):
        program = program_of({
            "src/pkg/a.py": """
                def compute():
                    return 1
            """,
            "src/pkg/b.py": """
                from pkg.a import compute as calc

                def run():
                    return calc()
            """,
        })
        assert program.resolve_call("pkg.b", "run", "calc") \
            == "pkg.a:compute"

    def test_module_level_alias_chain(self):
        program = program_of({"src/pkg/a.py": """
            def main():
                return 1

            runner = main

            def go():
                return runner()
        """})
        assert program.resolve_call("pkg.a", "go", "runner") == "pkg.a:main"

    def test_decorated_callable_still_resolves(self):
        program = program_of({"src/pkg/a.py": """
            import functools

            @functools.lru_cache(maxsize=None)
            def cached():
                return 1

            def run():
                return cached()
        """})
        assert program.resolve_call("pkg.a", "run", "cached") \
            == "pkg.a:cached"
        facts = program.modules["pkg.a"]
        assert facts["functions"]["cached"]["decorators"] \
            == ["functools.lru_cache"]

    def test_inherited_method_resolves_through_the_base(self):
        program = program_of({
            "src/pkg/base.py": """
                class Base:
                    def shared(self):
                        return 0
            """,
            "src/pkg/child.py": """
                from pkg.base import Base

                class Child(Base):
                    def run(self):
                        return self.shared()
            """,
        })
        assert program.resolve_call("pkg.child", "Child.run",
                                    "self.shared") == "pkg.base:Base.shared"

    def test_attribute_chain_types_through_attr_types(self):
        program = program_of({
            "src/pkg/stats.py": """
                class CacheStats:
                    def record(self):
                        return 1
            """,
            "src/pkg/cache.py": """
                from pkg.stats import CacheStats

                class Cache:
                    def __init__(self):
                        self.stats = CacheStats()

                class Owner:
                    def __init__(self, cache: Cache):
                        self.cache = cache

                    def touch(self):
                        return self.cache.stats.record()
            """,
        })
        assert program.resolve_call("pkg.cache", "Owner.touch",
                                    "self.cache.stats.record") \
            == "pkg.stats:CacheStats.record"

    def test_annotated_parameter_receiver_resolves(self):
        program = program_of({"src/pkg/a.py": """
            class Engine:
                def step(self):
                    return 1

            def drive(engine: Engine):
                return engine.step()
        """})
        assert program.resolve_call("pkg.a", "drive", "engine.step") \
            == "pkg.a:Engine.step"

    def test_local_bound_to_param_attribute_is_rewritten(self):
        program = program_of({"src/pkg/a.py": """
            class Stats:
                def bump(self):
                    return 1

            class Shared:
                def __init__(self):
                    self.stats = Stats()

            def run(shared: Shared):
                stats = shared.stats
                return stats.bump()
        """})
        calls = {c["name"] for c
                 in program.modules["pkg.a"]["functions"]["run"]["calls"]}
        assert "shared.stats.bump" in calls
        edges = program.call_edges["pkg.a:run"]
        assert "pkg.a:Stats.bump" in edges


class TestCallGraphClosure:
    def test_reachable_and_callers_are_transitive(self):
        program = program_of({"src/pkg/a.py": """
            def leaf():
                return 1

            def mid():
                return leaf()

            def top():
                return mid()
        """})
        assert "pkg.a:leaf" in program.reachable_from("pkg.a:top")
        assert "pkg.a:top" in program.callers_of("pkg.a:leaf")


class TestDependencySignatures:
    def _sigs(self, shas_b):
        shas = {"pkg.a": "sha_a", "pkg.b": shas_b, "pkg.c": "sha_c"}
        deps = {"pkg.a": {"pkg.b"}, "pkg.b": {"pkg.c"}, "pkg.c": set()}
        return dependency_signatures(shas, deps)

    def test_editing_a_transitive_dep_changes_the_signature(self):
        before = self._sigs("sha_b")
        after = self._sigs("sha_b_edited")
        assert before["pkg.a"] != after["pkg.a"]      # depends on b
        assert before["pkg.b"] != after["pkg.b"]      # is b
        assert before["pkg.c"] == after["pkg.c"]      # upstream of b

    def test_signature_is_order_independent_and_cycle_safe(self):
        shas = {"x": "1", "y": "2"}
        cyclic = {"x": {"y"}, "y": {"x"}}
        forward = dependency_signatures(shas, cyclic)
        backward = dependency_signatures(
            dict(reversed(list(shas.items()))), cyclic)
        assert forward == backward

    def test_project_imports_keep_only_scanned_modules(self):
        facts = extract_module_facts(FileContext.parse(
            "src/pkg/b.py", dedent("""
                import json
                from pkg.a import compute
                from . import sibling
            """)))
        known = {"pkg.a", "pkg.b", "pkg"}
        deps = project_imports(facts, known)
        assert "pkg.a" in deps
        assert all(not dep.startswith("json") for dep in deps)
