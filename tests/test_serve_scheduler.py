"""Scheduler unit tests: coalescing, batching, lanes, robustness.

The process pool is swapped for a thread pool (``executor_factory``)
and the worker for controllable fakes, so every scheduling decision is
tested deterministically and in milliseconds; the real pool + real
simulator path is covered by ``test_serve_endtoend.py``.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import SimulationConfig
from repro.config import KIB
from repro.parallel import result_from_dict, result_to_dict
from repro.serve import scheduler as scheduler_module
from repro.serve.scheduler import Scheduler
from repro.serve.schema import DONE, FAILED, QUEUED, TIMEOUT, JobRequest, \
    ServeError
from repro.tcor.system import SystemResult

SCALE = 0.05


def make_result(alias="GTr", label="tcor"):
    return SystemResult(label=label, alias=alias, pb_l2_reads=11,
                        mm_reads=3, structure_accesses={"l2": 42})


def good_records(alias, scale, entries, anim_payload=None):
    return [{"key": key, "result": result_to_dict(make_result(alias)),
             "metrics": {"fake.metric": 1.0}, "invariant_failures": []}
            for key, _config in entries]


def request(alias="GTr", *, size=None, **kwargs):
    config = SimulationConfig(tile_cache_bytes=size)
    return JobRequest(alias=alias, scale=SCALE, config=config, **kwargs)


def run_with_scheduler(body, **kwargs):
    """Run ``await body(sched)`` against a started thread-pool-backed
    scheduler, closing it afterwards."""
    kwargs.setdefault("executor_factory",
                      lambda jobs: ThreadPoolExecutor(max_workers=jobs))
    kwargs.setdefault("batch_window_s", 0.01)
    kwargs.setdefault("retry_backoff_s", 0.01)

    async def main():
        sched = Scheduler(**kwargs)
        await sched.start()
        try:
            return await body(sched)
        finally:
            await sched.close()

    return asyncio.run(main())


class TestHappyPath:
    def test_job_completes_on_the_pool_lane(self, monkeypatch):
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            good_records)

        async def body(sched):
            job, reused = sched.submit(request())
            assert not reused and job.state == QUEUED
            await asyncio.wait_for(job.done.wait(), 5)
            assert job.state == DONE and job.lane == "pool"
            assert job.attempts == 1
            payload = sched.result_payload(job)
            assert result_from_dict(payload["result"]) == make_result()
            assert payload["metrics"] == {"fake.metric": 1.0}
            assert sched.metrics.value("completed") == 1

        run_with_scheduler(body)

    def test_memo_serves_repeat_submissions(self, monkeypatch):
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            good_records)

        async def body(sched):
            job, _ = sched.submit(request())
            await asyncio.wait_for(job.done.wait(), 5)
            again, reused = sched.submit(request())
            assert reused and again is job
            assert sched.metrics.value("memo_hits") == 1

        run_with_scheduler(body)


class TestCoalescing:
    def test_identical_keys_share_one_job(self, monkeypatch):
        calls = []

        def worker(alias, scale, entries, anim_payload=None):
            calls.append(entries)
            return good_records(alias, scale, entries)
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            worker)

        async def body(sched):
            first, reused_a = sched.submit(request())
            # Identical simulation, different scheduling hints: must
            # coalesce, not fork a second job.
            dup, reused_b = sched.submit(request(priority="interactive"))
            assert not reused_a and reused_b and dup is first
            assert first.coalesced == 1
            await asyncio.wait_for(first.done.wait(), 5)
            assert sched.metrics.value("coalesced") == 1
            assert sched.metrics.value("accepted") == 1
            assert len(calls) == 1 and len(calls[0]) == 1

        run_with_scheduler(body, batch_window_s=0.1)


class TestMicroBatching:
    def test_compatible_jobs_share_one_worker_call(self, monkeypatch):
        calls = []

        def worker(alias, scale, entries, anim_payload=None):
            calls.append((alias, len(entries)))
            return good_records(alias, scale, entries)
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            worker)

        async def body(sched):
            jobs = [sched.submit(request(size=size))[0]
                    for size in (32 * KIB, 64 * KIB, 128 * KIB)]
            jobs.append(sched.submit(request("CCS"))[0])
            await asyncio.wait_for(
                asyncio.gather(*(job.done.wait() for job in jobs)), 10)
            assert sorted(calls) == [("CCS", 1), ("GTr", 3)]
            assert sched.metrics.value("batches") == 2
            assert sched.metrics.value("batch_jobs") == 4

        run_with_scheduler(body, batch_window_s=0.1, batch_max=8)

    def test_interactive_lane_goes_first(self, monkeypatch):
        order = []

        def worker(alias, scale, entries, anim_payload=None):
            order.append(alias)
            return good_records(alias, scale, entries)
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            worker)

        async def body(sched):
            slow = sched.submit(request("CCS"))[0]
            fast = sched.submit(request(priority="interactive"))[0]
            await asyncio.wait_for(
                asyncio.gather(slow.done.wait(), fast.done.wait()), 10)
            assert order[0] == "GTr"

        run_with_scheduler(body, batch_window_s=0.1, jobs=1)


class TestAdmissionControl:
    def test_full_queue_rejects_with_429(self, monkeypatch):
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            good_records)

        async def body(sched):
            sched.submit(request(size=32 * KIB))
            sched.submit(request(size=64 * KIB))
            with pytest.raises(ServeError) as excinfo:
                sched.submit(request(size=128 * KIB))
            assert excinfo.value.code == "queue_full"
            assert excinfo.value.http_status == 429
            assert sched.metrics.value("rejected.queue_full") == 1
            # Coalescing onto live work is still allowed at capacity.
            _, reused = sched.submit(request(size=32 * KIB))
            assert reused

        run_with_scheduler(body, queue_limit=2, batch_window_s=0.2)

    def test_draining_rejects_with_503(self, monkeypatch):
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            good_records)

        async def body(sched):
            await sched.drain(timeout_s=1)
            with pytest.raises(ServeError) as excinfo:
                sched.submit(request())
            assert excinfo.value.code == "draining"
            assert excinfo.value.http_status == 503
            assert sched.metrics.value("rejected.draining") == 1

        run_with_scheduler(body)

    def test_drain_finishes_inflight_work(self, monkeypatch):
        release = threading.Event()

        def worker(alias, scale, entries, anim_payload=None):
            release.wait(5)
            return good_records(alias, scale, entries)
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            worker)

        async def body(sched):
            job, _ = sched.submit(request())
            while job.state == QUEUED:
                await asyncio.sleep(0.005)
            drain = asyncio.create_task(sched.drain(timeout_s=5))
            await asyncio.sleep(0.02)
            release.set()
            assert await drain == 1
            assert job.state == DONE
            assert sched.metrics.value("drained") == 1

        try:
            run_with_scheduler(body)
        finally:
            release.set()


class TestFailureModes:
    def test_pool_error_retries_then_succeeds(self, monkeypatch):
        attempts = []

        def worker(alias, scale, entries, anim_payload=None):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient pool failure")
            return good_records(alias, scale, entries)
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            worker)

        async def body(sched):
            job, _ = sched.submit(request())
            await asyncio.wait_for(job.done.wait(), 10)
            assert job.state == DONE and job.attempts == 2
            assert sched.metrics.value("retries") == 1

        run_with_scheduler(body, max_attempts=2)

    def test_attempt_budget_exhausts_to_failed(self, monkeypatch):
        def worker(alias, scale, entries, anim_payload=None):
            raise RuntimeError("persistent pool failure")
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            worker)

        async def body(sched):
            job, _ = sched.submit(request())
            await asyncio.wait_for(job.done.wait(), 10)
            assert job.state == FAILED and job.attempts == 2
            assert "persistent pool failure" in job.error
            assert sched.metrics.value("failed") == 1

        run_with_scheduler(body, max_attempts=2)

    def test_deterministic_sim_error_is_not_retried(self, monkeypatch):
        def worker(alias, scale, entries, anim_payload=None):
            return [{"key": key, "error": "ValueError: bad geometry"}
                    for key, _config in entries]
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            worker)

        async def body(sched):
            job, _ = sched.submit(request())
            await asyncio.wait_for(job.done.wait(), 10)
            assert job.state == FAILED and job.attempts == 1
            assert job.error == "ValueError: bad geometry"
            assert sched.metrics.value("retries") == 0

        run_with_scheduler(body, max_attempts=3)

    def test_timeout_recycles_the_pool(self, monkeypatch):
        pools_made = []

        def factory(jobs):
            pools_made.append(1)
            return ThreadPoolExecutor(max_workers=jobs)

        def worker(alias, scale, entries, anim_payload=None):
            import time
            time.sleep(0.4)
            return good_records(alias, scale, entries)
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            worker)

        async def body(sched):
            job, _ = sched.submit(request(timeout_s=0.05))
            await asyncio.wait_for(job.done.wait(), 10)
            assert job.state == TIMEOUT
            assert "timed out" in job.error
            assert sched.metrics.value("timeouts") == 1
            assert sched.metrics.value("pool_recycles") == 1
            assert len(pools_made) == 2  # the original + the recycle

        run_with_scheduler(body, max_attempts=1, executor_factory=factory)

    def test_failed_key_can_be_resubmitted(self, monkeypatch):
        attempts = []

        def worker(alias, scale, entries, anim_payload=None):
            attempts.append(1)
            if len(attempts) == 1:
                return [{"key": key, "error": "ValueError: flaky input"}
                        for key, _config in entries]
            return good_records(alias, scale, entries)
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            worker)

        async def body(sched):
            first, _ = sched.submit(request())
            await asyncio.wait_for(first.done.wait(), 10)
            assert first.state == FAILED
            second, reused = sched.submit(request())
            assert not reused and second is not first
            await asyncio.wait_for(second.done.wait(), 10)
            assert second.state == DONE

        run_with_scheduler(body, max_attempts=1)


class FakeDisk:
    """Duck-typed stand-in for the PR 2 DiskCache."""

    signature = "fake-sig"

    def __init__(self, warm=None):
        self.warm = warm
        self.put_calls = []

    def get_tcor(self, spec, scale, tcor, *, l2_enhancements):
        return self.warm

    def get_baseline(self, spec, scale, size_bytes):
        return self.warm

    def put_tcor(self, spec, scale, tcor, *, l2_enhancements, result):
        self.put_calls.append(("tcor", spec.alias, result))

    def put_baseline(self, spec, scale, size_bytes, result):
        self.put_calls.append(("baseline", spec.alias, result))


class TestDiskLane:
    def test_warm_key_never_takes_a_pool_slot(self, monkeypatch):
        def bomb(alias, scale, entries, anim_payload=None):
            raise AssertionError("disk-warm job reached the pool")
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            bomb)
        disk = FakeDisk(warm=make_result())

        async def body(sched):
            job, _ = sched.submit(request())
            await asyncio.wait_for(job.done.wait(), 5)
            assert job.state == DONE and job.lane == "disk"
            payload = sched.result_payload(job)
            assert result_from_dict(payload["result"]) == make_result()
            assert sched.metrics.value("disk_hits") == 1
            assert sched.metrics.value("batches") == 0

        run_with_scheduler(body, disk=disk)

    def test_unmappable_requests_bypass_the_disk(self, monkeypatch):
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            good_records)
        disk = FakeDisk(warm=make_result())

        async def body(sched):
            bypass = JobRequest(alias="GTr", scale=SCALE,
                                config=SimulationConfig(
                                    include_background=False))
            job, _ = sched.submit(bypass)
            await asyncio.wait_for(job.done.wait(), 5)
            assert job.lane == "pool"
            assert sched.metrics.value("disk_hits") == 0

        run_with_scheduler(body, disk=disk)

    def test_cold_miss_writes_through(self, monkeypatch):
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            good_records)
        disk = FakeDisk(warm=None)

        async def body(sched):
            job, _ = sched.submit(request())
            await asyncio.wait_for(job.done.wait(), 5)
            assert job.lane == "pool"
            # Write-through is async; give the executor hop a beat.
            for _ in range(100):
                if disk.put_calls:
                    break
                await asyncio.sleep(0.01)
            assert disk.put_calls == [("tcor", "GTr", make_result())]

        run_with_scheduler(body, disk=disk)

    def test_warm_batch_probes_in_one_executor_round_trip(
            self, monkeypatch):
        # The fast lane costs one thread hand-off per micro-batch, not
        # one per job (the SIM201 fix): three warm submissions in one
        # window must reach the store through a single batched probe.
        def bomb(alias, scale, entries, anim_payload=None):
            raise AssertionError("disk-warm job reached the pool")
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            bomb)
        probe_batches = []
        single_probe = scheduler_module.schema.probe_disk_batch

        def counting(disk, requests):
            probe_batches.append(list(requests))
            return single_probe(disk, requests)
        monkeypatch.setattr(scheduler_module.schema, "probe_disk_batch",
                            counting)
        disk = FakeDisk(warm=make_result())

        async def body(sched):
            jobs = [sched.submit(request(size=(i + 1) * 128 * KIB))[0]
                    for i in range(3)]
            await asyncio.gather(
                *(asyncio.wait_for(job.done.wait(), 5) for job in jobs))
            assert all(job.state == DONE and job.lane == "disk"
                       for job in jobs)
            assert sched.metrics.value("disk_hits") == 3
            assert len(probe_batches) == 1
            assert len(probe_batches[0]) == 3

        run_with_scheduler(body, disk=disk, batch_window_s=0.1)

    def test_cold_batch_writes_through_in_one_round_trip(
            self, monkeypatch):
        # Write-through is batched the same way: one executor hop
        # stores every record the batch produced.
        monkeypatch.setattr(scheduler_module, "simulate_request_batch",
                            good_records)
        store_batches = []
        single_store = scheduler_module.schema.store_disk_batch

        def counting(disk, entries):
            store_batches.append(list(entries))
            return single_store(disk, entries)
        monkeypatch.setattr(scheduler_module.schema, "store_disk_batch",
                            counting)
        disk = FakeDisk(warm=None)

        async def body(sched):
            jobs = [sched.submit(request(size=(i + 1) * 128 * KIB))[0]
                    for i in range(3)]
            await asyncio.gather(
                *(asyncio.wait_for(job.done.wait(), 5) for job in jobs))
            assert all(job.lane == "pool" for job in jobs)
            # Write-through is async; give the executor hop a beat.
            for _ in range(100):
                if len(disk.put_calls) == 3:
                    break
                await asyncio.sleep(0.01)
            assert len(store_batches) == 1
            assert len(store_batches[0]) == 3
            assert len(disk.put_calls) == 3

        run_with_scheduler(body, disk=disk, batch_window_s=0.1)

    def test_scheduler_key_carries_the_disk_signature(self):
        with_disk = Scheduler(disk=FakeDisk())
        without = Scheduler()
        req = request()
        key_a = scheduler_module.schema.request_key(
            req, with_disk.signature)
        key_b = scheduler_module.schema.request_key(req, without.signature)
        assert with_disk.signature == "fake-sig"
        assert key_a != key_b
