"""The Figure 10 state-table experiment matches the paper's narrative."""

import pytest

from repro.experiments import fig10_example


@pytest.fixture(scope="module")
def result():
    return fig10_example.run()


def test_twelve_steps_plus_total(result):
    assert len(result.rows) == 13
    assert result.rows[-1][0] == "TOTAL"


def test_opt_bypasses_third_write(result):
    third_write = result.rows[2]
    # LRU wrote back on eviction; OPT's state still holds blue+yellow.
    assert "yellow" in third_write[1] and "pink" in third_write[1]
    assert "blue" in third_write[3] and "yellow" in third_write[3]
    assert third_write[2] == "0r/1w"
    assert third_write[4] == "0r/1w"


def test_opt_hits_yellow_at_tile_2_where_lru_misses(result):
    tile2 = result.row_for("TF tile 2 (yellow)")
    assert tile2[2].startswith("1r")   # LRU: L2 read
    assert tile2[4] == "0r/0w"         # OPT: hit, nothing downstream


def test_opt_keeps_blue_for_tile_4_where_lru_refetches(result):
    tile4 = result.row_for("TF tile 4 (blue)")
    assert tile4[2].startswith("1r")
    assert tile4[4] == "0r/0w"


def test_opt_strictly_fewer_l2_events(result):
    total = result.rows[-1]
    lru_reads = int(total[2].split("r")[0])
    opt_reads = int(total[4].split("r")[0])
    assert opt_reads < lru_reads
