"""The consistent-hash ring (cluster sharding's unit contract).

The acceptance criteria pin two properties: **stability** (membership
changes remap only the lost node's keys) and **balance** (uniform keys
spread within max/min <= 1.5 at 3 shards).
"""

from __future__ import annotations

from repro.serve.ring import DEFAULT_REPLICAS, HashRing

KEYS = [f"key-{i}" for i in range(20000)]


class TestMembership:
    def test_empty_ring_owns_nothing(self):
        ring = HashRing()
        assert len(ring) == 0
        assert ring.node_for("anything") is None

    def test_add_remove_and_contains(self):
        ring = HashRing(["a"])
        assert "a" in ring and len(ring) == 1
        assert ring.add("b") is True
        assert ring.add("b") is False  # idempotent
        assert ring.nodes == frozenset({"a", "b"})
        assert ring.remove("b") is True
        assert ring.remove("b") is False
        assert "b" not in ring

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node_for(key) == "only" for key in KEYS[:100])


class TestDeterminism:
    def test_ownership_is_deterministic(self):
        one = HashRing(["a", "b", "c"])
        two = HashRing(["c", "a", "b"])  # insertion order irrelevant
        for key in KEYS[:500]:
            assert one.node_for(key) == two.node_for(key)


class TestStability:
    def test_removal_only_remaps_the_lost_nodes_keys(self):
        ring = HashRing(["a", "b", "c"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove("b")
        for key, owner in before.items():
            after = ring.node_for(key)
            if owner == "b":
                assert after in ("a", "c")
            else:
                assert after == owner  # survivors keep their keys

    def test_readding_restores_the_original_mapping(self):
        ring = HashRing(["a", "b", "c"])
        before = {key: ring.node_for(key) for key in KEYS[:2000]}
        ring.remove("b")
        ring.add("b")
        assert {key: ring.node_for(key)
                for key in KEYS[:2000]} == before

    def test_avoid_set_equals_removal(self):
        """Routing around a down shard (avoid) must agree with the
        ring that shard was removed from — so drain/requeue and the
        health loop compute identical ownership."""
        full = HashRing(["a", "b", "c"])
        shrunk = HashRing(["a", "c"])
        for key in KEYS[:1000]:
            assert full.node_for(key, avoid=frozenset({"b"})) \
                == shrunk.node_for(key)

    def test_all_avoided_is_none(self):
        ring = HashRing(["a", "b"])
        assert ring.node_for("k", avoid=frozenset({"a", "b"})) is None


class TestBalance:
    def test_three_shards_within_tolerance(self):
        """The ISSUE gate: uniform keys, 3 shards, max/min <= 1.5."""
        ring = HashRing(["shard0", "shard1", "shard2"])
        spread = ring.spread(KEYS)
        assert set(spread) == {"shard0", "shard1", "shard2"}
        assert sum(spread.values()) == len(KEYS)
        assert max(spread.values()) / min(spread.values()) <= 1.5

    def test_more_replicas_never_hurt_coverage(self):
        sparse = HashRing(["a", "b", "c"], replicas=8)
        dense = HashRing(["a", "b", "c"], replicas=DEFAULT_REPLICAS)
        loose = sparse.spread(KEYS)
        tight = dense.spread(KEYS)
        assert max(tight.values()) / min(tight.values()) \
            <= max(loose.values()) / max(1, min(loose.values()))
