"""The parallel experiment engine: fan-out, disk cache, invalidation.

Covers the PR's contract points: a pool run produces byte-identical
tables to a serial run, prefetch really populates the memo the figure
modules read, a second invocation is served from disk without
simulating, and any change to the simulator sources (or its recorded
signature) invalidates the store.
"""

from __future__ import annotations

import pytest

from repro.config import KIB, TCORConfig
from repro.experiments import common
from repro.experiments.common import SimulationCache, format_table
from repro.experiments.driver import resolve_names, run_experiments
from repro.parallel import (
    DiskCache,
    ParallelSimulationCache,
    SimJob,
    enumerate_jobs,
    simulation_code_signature,
)
from repro.tcor.system import SystemResult
from repro.workloads.suite import BENCHMARKS, build_workload

ALIASES = ("GTr", "CCS")
SCALE = 0.05


class TestEnumerateJobs:
    def test_fig14_matrix(self):
        jobs = enumerate_jobs(["fig14"], ALIASES)
        assert len(jobs) == 8  # 2 aliases x 2 kinds x 2 sizes
        kinds = {job.kind for job in jobs}
        assert kinds == {"baseline", "tcor"}
        assert {job.alias for job in jobs} == set(ALIASES)

    def test_fig20_adds_no_l2_variant(self):
        kinds = {job.kind for job in enumerate_jobs(["fig20"], ("GTr",))}
        assert kinds == {"baseline", "tcor", "tcor_no_l2"}

    def test_workload_only_experiments_need_no_jobs(self):
        assert enumerate_jobs(["tables", "fig01", "fig11"], ALIASES) == []

    def test_deterministic_order(self):
        assert enumerate_jobs(["fig14"], ALIASES) == \
            enumerate_jobs(["fig14"], ALIASES)


class TestResolveNames:
    def test_aliases_resolve_and_dedup(self):
        assert resolve_names(["fig15", "fig14", "table1"]) == \
            ["fig14", "tables"]

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="fig99"):
            resolve_names(["fig99"])


class TestParallelSerialEquivalence:
    def test_pool_run_matches_serial_tables(self):
        serial = run_experiments(["fig14"], scale=SCALE, aliases=ALIASES,
                                 jobs=1)
        pooled = run_experiments(["fig14"], scale=SCALE, aliases=ALIASES,
                                 jobs=4)
        serial_text = [format_table(result) for result in serial]
        pooled_text = [format_table(result) for result in pooled]
        assert serial_text == pooled_text

    def test_prefetch_populates_the_memo(self, monkeypatch):
        cache = ParallelSimulationCache(scale=SCALE, aliases=ALIASES, jobs=4)
        simulated = cache.prefetch(["fig14"])
        assert simulated == 8
        assert len(cache._systems) == 8
        # The figure module's lookups must now be pure memo reads.
        def bomb(*args, **kwargs):
            raise AssertionError("prefetched result was re-simulated")
        monkeypatch.setattr(common, "simulate_baseline", bomb)
        monkeypatch.setattr(common, "simulate_tcor", bomb)
        cache.baseline("GTr", 64 * KIB)
        cache.tcor("CCS", 128 * KIB)

    def test_prefetch_skips_already_memoized(self):
        cache = ParallelSimulationCache(scale=SCALE, aliases=("GTr",), jobs=2)
        assert cache.prefetch(["fig14"]) == 4
        assert cache.prefetch(["fig14"]) == 0


def make_result(alias="GTr", label="baseline"):
    return SystemResult(label=label, alias=alias, pb_l2_reads=11,
                        pb_l2_writes=7, mm_reads=3, mm_writes=2,
                        structure_accesses={"l2": 42, "dram": 5})


class TestDiskCache:
    def test_round_trip_is_bit_identical(self, tmp_path):
        disk = DiskCache(tmp_path, signature="sig")
        spec = BENCHMARKS["GTr"]
        result = make_result()
        disk.put_baseline(spec, SCALE, 64 * KIB, result)
        loaded = disk.get_baseline(spec, SCALE, 64 * KIB)
        assert loaded == result

    def test_signature_change_invalidates(self, tmp_path):
        spec = BENCHMARKS["GTr"]
        DiskCache(tmp_path, signature="old").put_baseline(
            spec, SCALE, 64 * KIB, make_result())
        assert DiskCache(tmp_path, signature="new").get_baseline(
            spec, SCALE, 64 * KIB) is None
        assert DiskCache(tmp_path, signature="old").get_baseline(
            spec, SCALE, 64 * KIB) is not None

    def test_distinct_configs_do_not_alias(self, tmp_path):
        disk = DiskCache(tmp_path, signature="sig")
        spec = BENCHMARKS["GTr"]
        disk.put_baseline(spec, SCALE, 64 * KIB, make_result())
        assert disk.get_baseline(spec, SCALE, 128 * KIB) is None
        assert disk.get_baseline(spec, 0.1, 64 * KIB) is None
        assert disk.get_tcor(spec, SCALE, TCORConfig.for_total_size(64 * KIB),
                             l2_enhancements=True) is None

    def test_corrupt_record_degrades_to_miss(self, tmp_path):
        disk = DiskCache(tmp_path, signature="sig")
        spec = BENCHMARKS["GTr"]
        disk.put_baseline(spec, SCALE, 64 * KIB, make_result())
        for record in tmp_path.glob("*.json"):
            record.write_text("{ not json")
        assert disk.get_baseline(spec, SCALE, 64 * KIB) is None

    def test_clear_removes_records(self, tmp_path):
        disk = DiskCache(tmp_path, signature="sig")
        disk.put_baseline(BENCHMARKS["GTr"], SCALE, 64 * KIB, make_result())
        assert disk.clear() == 1
        assert list(tmp_path.glob("*.json")) == []


class TestConcurrentDiskWriters:
    """Atomicity of the store under concurrent writers (the serving
    layer's write-through path runs in executor threads, and several
    server/experiment processes may share one cache directory)."""

    def test_racing_writers_never_corrupt_a_record(self, tmp_path):
        import threading

        disk = DiskCache(tmp_path, signature="sig")
        spec = BENCHMARKS["GTr"]
        results = [make_result(label=f"writer-{i}") for i in range(8)]
        barrier = threading.Barrier(len(results))
        errors = []

        def write(result):
            try:
                barrier.wait(timeout=10)
                for _ in range(5):
                    disk.put_baseline(spec, SCALE, 64 * KIB, result)
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(result,))
                   for result in results]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        # Whoever won, the record is a complete, loadable result.
        loaded = disk.get_baseline(spec, SCALE, 64 * KIB)
        assert loaded in results

    def test_no_temp_files_left_behind(self, tmp_path):
        import threading

        disk = DiskCache(tmp_path, signature="sig")
        spec = BENCHMARKS["GTr"]
        threads = [
            threading.Thread(
                target=lambda size=size: disk.put_baseline(
                    spec, SCALE, size, make_result()))
            for size in (32 * KIB, 64 * KIB, 128 * KIB, 256 * KIB)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []
        assert len(list(tmp_path.glob("*.json"))) == 4

    def test_temp_names_are_writer_unique(self, tmp_path):
        """Two writers in one process (distinct threads) and repeated
        writes from one thread must never collide on the temp name."""
        from repro.parallel import store as store_module

        a = store_module.DiskCache(tmp_path, signature="sig")
        spec = BENCHMARKS["GTr"]
        seen = set()
        original_replace = store_module.os.replace

        def spy(src, dst):
            assert src not in seen, "temp file name reused"
            seen.add(src)
            return original_replace(src, dst)

        store_module.os.replace = spy
        try:
            for _ in range(3):
                a.put_baseline(spec, SCALE, 64 * KIB, make_result())
        finally:
            store_module.os.replace = original_replace
        assert len(seen) == 3


class TestTraceStoreVersioning:
    """Persisted compiled traces carry ``TRACE_IR_VERSION``; a record
    written by an older IR (e.g. the single-frame v1 layout without
    per-tile signature arrays) must degrade to a clean cache miss —
    re-compiled, never mis-replayed."""

    def _compile(self, anim=None, scale=0.05):
        from repro.replay import compile_workload

        if anim is None:
            workload = build_workload(BENCHMARKS["GTr"], scale=scale)
        else:
            from repro.anim import build_animated_workload

            workload = build_animated_workload(BENCHMARKS["GTr"], anim,
                                               scale=scale)
        return workload, compile_workload(workload)

    def test_trace_round_trip(self, tmp_path):
        disk = DiskCache(tmp_path, trace_signature="tsig")
        spec = BENCHMARKS["GTr"]
        _, trace = self._compile()
        disk.put_trace(spec, 0.05, trace)
        loaded = disk.get_trace(spec, 0.05)
        assert loaded is not None
        assert loaded.num_accesses == trace.num_accesses
        assert loaded.header.as_dict() == trace.header.as_dict()

    def test_stale_ir_version_is_a_clean_miss(self, tmp_path,
                                              monkeypatch):
        from repro.replay import ir

        disk = DiskCache(tmp_path, trace_signature="tsig")
        spec = BENCHMARKS["GTr"]
        _, trace = self._compile()
        # Persist the archive stamped as the pre-animation v1 layout,
        # as an older build of the repo would have written it.
        with monkeypatch.context() as patch:
            patch.setattr(ir, "TRACE_IR_VERSION", 1)
            disk.put_trace(spec, 0.05, trace)
        assert len(list(tmp_path.glob("trace-*.npz"))) == 1
        # Today's reader must refuse it (miss), not replay garbage.
        assert disk.get_trace(spec, 0.05) is None
        assert disk.misses == 1

    def test_animated_traces_do_not_alias_static_ones(self, tmp_path):
        from repro.anim import AnimationSpec

        disk = DiskCache(tmp_path, trace_signature="tsig")
        spec = BENCHMARKS["GTr"]
        anim = AnimationSpec(frames=3, path="orbit", seed=5)
        _, animated = self._compile(anim=anim)
        disk.put_trace(spec, 0.05, animated, anim=anim)
        # Static lookups miss; the animated key hits with all frames.
        assert disk.get_trace(spec, 0.05) is None
        assert disk.get_trace(spec, 0.05, anim=anim.prefix(2)) is None
        loaded = disk.get_trace(spec, 0.05, anim=anim)
        assert loaded is not None
        assert len(loaded.frames) == 3
        for frame, frame_loaded in zip(animated.frames, loaded.frames):
            assert list(frame.tile_sig) == list(frame_loaded.tile_sig)


class TestPrefetchInterrupt:
    def test_interrupt_shuts_the_pool_down_without_waiting(
            self, monkeypatch, tmp_path):
        """Ctrl-C during a fan-out must cancel queued batches and
        re-raise immediately instead of waiting for stragglers
        (regression test for the executor-shutdown satellite)."""
        from concurrent.futures import Future

        from repro.parallel import engine as engine_module

        class InterruptingPool:
            instances = []

            def __init__(self, max_workers=None):
                self.max_workers = max_workers
                self.shutdown_calls = []
                InterruptingPool.instances.append(self)

            def submit(self, fn, *args, **kwargs):
                future = Future()
                future.set_exception(KeyboardInterrupt())
                return future

            def shutdown(self, wait=True, cancel_futures=False):
                self.shutdown_calls.append(
                    {"wait": wait, "cancel_futures": cancel_futures})

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor",
                            InterruptingPool)
        cache = ParallelSimulationCache(scale=SCALE, aliases=ALIASES,
                                        jobs=4)
        with pytest.raises(KeyboardInterrupt):
            cache.prefetch(["fig14"])
        (pool,) = InterruptingPool.instances
        assert pool.shutdown_calls == \
            [{"wait": False, "cancel_futures": True}]


class TestCodeSignature:
    def test_stable_for_unchanged_tree(self, tmp_path):
        (tmp_path / "tcor").mkdir()
        (tmp_path / "tcor" / "system.py").write_text("COUNTER = 1\n")
        assert simulation_code_signature(tmp_path) == \
            simulation_code_signature(tmp_path)

    def test_touching_a_simulator_source_invalidates(self, tmp_path):
        source = tmp_path / "tcor" / "system.py"
        source.parent.mkdir()
        source.write_text("COUNTER = 1\n")
        before = simulation_code_signature(tmp_path)
        source.write_text("COUNTER = 2\n")
        assert simulation_code_signature(tmp_path) != before

    def test_non_simulator_files_do_not_matter(self, tmp_path):
        (tmp_path / "tcor").mkdir()
        (tmp_path / "tcor" / "system.py").write_text("COUNTER = 1\n")
        before = simulation_code_signature(tmp_path)
        (tmp_path / "experiments").mkdir()
        (tmp_path / "experiments" / "fig99.py").write_text("ROWS = []\n")
        assert simulation_code_signature(tmp_path) == before

    def test_real_package_signature_is_stable(self):
        assert simulation_code_signature() == simulation_code_signature()


class TestDiskBackedSimulationCache:
    def test_second_run_is_served_from_disk(self, tmp_path, monkeypatch):
        disk = DiskCache(tmp_path, signature="sig")
        warm = SimulationCache(scale=SCALE, aliases=("GTr",), disk=disk)
        first = warm.baseline("GTr", 64 * KIB)
        # One SystemResult record + one compiled-trace archive.
        assert disk.stores == 2

        def bomb(*args, **kwargs):
            raise AssertionError("disk-cached result was re-simulated")
        monkeypatch.setattr(common, "simulate_baseline", bomb)
        monkeypatch.setattr(common, "simulate_tcor", bomb)
        cold = SimulationCache(scale=SCALE, aliases=("GTr",),
                               disk=DiskCache(tmp_path, signature="sig"))
        assert cold.baseline("GTr", 64 * KIB) == first

    def test_changed_signature_re_simulates(self, tmp_path):
        spec_disk = DiskCache(tmp_path, signature="sig-a")
        warm = SimulationCache(scale=SCALE, aliases=("GTr",), disk=spec_disk)
        warm.baseline("GTr", 64 * KIB)
        edited = DiskCache(tmp_path, signature="sig-b")
        rerun = SimulationCache(scale=SCALE, aliases=("GTr",), disk=edited)
        rerun.baseline("GTr", 64 * KIB)
        assert edited.misses == 1 and edited.stores == 1

    def test_prefetch_writes_through_and_reloads(self, tmp_path):
        disk = DiskCache(tmp_path, signature="sig")
        cache = ParallelSimulationCache(scale=SCALE, aliases=ALIASES,
                                        jobs=4, disk=disk)
        assert cache.prefetch(["fig14"]) == 8
        assert disk.stores == 8
        reloaded = ParallelSimulationCache(
            scale=SCALE, aliases=ALIASES, jobs=4,
            disk=DiskCache(tmp_path, signature="sig"))
        assert reloaded.prefetch(["fig14"]) == 0
        assert len(reloaded._systems) == 8


class TestTableCache:
    def test_second_run_skips_experiment_modules(self, tmp_path, monkeypatch):
        disk = DiskCache(tmp_path, signature="sig",
                         table_signature="tables-sig")
        first = run_experiments(["fig14"], scale=SCALE, aliases=ALIASES,
                                disk=disk)

        from repro.experiments import fig14_15_l2_accesses

        def bomb(*args, **kwargs):
            raise AssertionError("table-cached experiment module re-ran")
        monkeypatch.setattr(fig14_15_l2_accesses, "run", bomb)
        second = run_experiments(
            ["fig14"], scale=SCALE, aliases=ALIASES,
            disk=DiskCache(tmp_path, signature="sig",
                           table_signature="tables-sig"))
        assert [format_table(result) for result in second] == \
            [format_table(result) for result in first]

    def test_table_signature_change_invalidates_tables_only(self, tmp_path):
        warm = DiskCache(tmp_path, signature="sig", table_signature="old")
        run_experiments(["fig14"], scale=SCALE, aliases=ALIASES, disk=warm)
        edited = DiskCache(tmp_path, signature="sig", table_signature="new")
        assert edited.get_tables("fig14", SCALE, ALIASES) is None
        # SystemResult records key on the simulator signature alone, so
        # a sweep/formatting edit leaves them warm.
        assert edited.get_baseline(BENCHMARKS["GTr"], SCALE,
                                   64 * KIB) is not None


class TestJobBatchWorker:
    def test_batch_matches_lazy_cache_results(self):
        from repro.parallel import simulate_job_batch

        jobs = (SimJob("baseline", "GTr", 64 * KIB),
                SimJob("tcor", "GTr", 64 * KIB),
                SimJob("tcor_no_l2", "GTr", 64 * KIB))
        batch = dict(simulate_job_batch("GTr", SCALE, jobs))
        lazy = SimulationCache(scale=SCALE, aliases=("GTr",))
        assert batch[jobs[0]] == lazy.baseline("GTr", 64 * KIB)
        assert batch[jobs[1]] == lazy.tcor("GTr", 64 * KIB)
        assert batch[jobs[2]] == lazy.tcor("GTr", 64 * KIB,
                                           l2_enhancements=False)

    def test_worker_sheds_a_fork_inherited_tracer(self):
        """With the fork start method a worker inherits whatever tracer
        the parent had installed in ``obs.trace.ACTIVE`` — whose sinks
        hold the parent's duplicated file handles.  The worker must run
        its batch with tracing off and restore the module state on the
        way out (regression test for the SIM101 fork-safety finding)."""
        from repro.obs import trace as obs_trace
        from repro.parallel import simulate_job_batch

        inherited = obs_trace.Tracer()
        jobs = (SimJob("baseline", "GTr", 64 * KIB),)
        with obs_trace.activation(inherited):
            simulate_job_batch("GTr", SCALE, jobs)
            # The simulation emitted nothing into the inherited tracer
            # and left it installed for the (simulated) parent.
            assert inherited.events_emitted == 0
            assert obs_trace.ACTIVE is inherited
        assert obs_trace.ACTIVE is None
