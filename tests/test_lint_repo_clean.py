"""Meta-test: the shipped tree passes its own static analysis.

This is the machine-checked guardrail the lint subsystem exists for —
any PR that reintroduces a global RNG, an orphaned stats counter, a
duplicated sentinel or an illegal cache geometry fails here (and in the
CI lint step) before a reviewer ever sees it.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTED_TREES = ("src", "benchmarks", "examples")


def test_shipped_tree_is_lint_clean():
    result = lint_paths(
        [str(REPO_ROOT / tree) for tree in LINTED_TREES],
        root=REPO_ROOT, use_cache=False,
    )
    assert result.files_checked > 100  # the pass really saw the tree
    messages = [violation.format() for violation in result.violations]
    assert messages == []


def test_shipped_tree_is_semantically_clean():
    """The whole-program SIM1xx pass (call graph + CFG dataflow) blesses
    the tree too: no fork-unsafe pool submissions, no untraced counter
    mutations, no config mutation after construction, no dead counters,
    no fresh OPT-number literals."""
    result = lint_paths(
        [str(REPO_ROOT / tree) for tree in LINTED_TREES],
        root=REPO_ROOT, use_cache=False, semantic=True,
    )
    assert result.semantic_enabled
    assert result.semantic_modules > 100  # the whole program was modelled
    semantic = [violation.format() for violation in result.violations
                if violation.rule.startswith("SIM1")]
    assert semantic == []


def test_seeded_violation_is_caught(tmp_path):
    """End-to-end guarantee: the same pass that blesses the tree still
    fails when a violation is introduced next to it."""
    bad = tmp_path / "regression.py"
    bad.write_text("import random\nVICTIM = random.randint(0, 3)\n")
    result = lint_paths(
        [str(REPO_ROOT / "src"), str(tmp_path)],
        root=REPO_ROOT, use_cache=False,
    )
    assert [violation.rule for violation in result.violations] == ["SIM001"]
