"""Meta-test: the shipped tree passes its own static analysis.

This is the machine-checked guardrail the lint subsystem exists for —
any PR that reintroduces a global RNG, an orphaned stats counter, a
duplicated sentinel or an illegal cache geometry fails here (and in the
CI lint step) before a reviewer ever sees it.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTED_TREES = ("src", "benchmarks", "examples")


def test_shipped_tree_is_lint_clean():
    result = lint_paths(
        [str(REPO_ROOT / tree) for tree in LINTED_TREES],
        root=REPO_ROOT, use_cache=False,
    )
    assert result.files_checked > 100  # the pass really saw the tree
    messages = [violation.format() for violation in result.violations]
    assert messages == []


def test_shipped_tree_is_semantically_clean():
    """The whole-program SIM1xx pass (call graph + CFG dataflow) blesses
    the tree too: no fork-unsafe pool submissions, no untraced counter
    mutations, no config mutation after construction, no dead counters,
    no fresh OPT-number literals."""
    result = lint_paths(
        [str(REPO_ROOT / tree) for tree in LINTED_TREES],
        root=REPO_ROOT, use_cache=False, semantic=True,
    )
    assert result.semantic_enabled
    assert result.semantic_modules > 100  # the whole program was modelled
    semantic = [violation.format() for violation in result.violations
                if violation.rule.startswith("SIM1")]
    assert semantic == []


def test_shipped_tree_is_concurrency_clean():
    """The SIM2xx pass blesses the tree as well: no blocking calls on
    the event loop, no atomicity gaps across awaits, no dropped tasks
    or coroutines, no lock-discipline breaches, no off-loop obs hook
    writes — the serve layer's findings were fixed (executor dispatch,
    batched probe/write-through) or justified with a suppression."""
    result = lint_paths(
        [str(REPO_ROOT / tree) for tree in LINTED_TREES],
        root=REPO_ROOT, use_cache=False, semantic=True,
    )
    concurrency = [violation.format() for violation in result.violations
                   if violation.rule.startswith("SIM2")]
    assert concurrency == []


def test_shipped_tree_is_contract_clean():
    """The SIM3xx contract pass blesses the tree: every counter the
    live caches write is reconstructed by the replay kernels (modulo
    the spec's justified waivers), every metric literal resolves
    against the registered tables, every wire field is declared within
    the schema compat span, every REPRO_* knob reads through
    repro.envvars, and version constants are only compared via their
    helpers."""
    result = lint_paths(
        [str(REPO_ROOT / tree) for tree in LINTED_TREES],
        root=REPO_ROOT, use_cache=False, semantic=True,
    )
    contracts = [violation.format() for violation in result.violations
                 if violation.rule.startswith("SIM3")]
    assert contracts == []


def test_seeded_async_violation_is_caught_next_to_the_tree(tmp_path):
    """The same pass that blesses the tree still fails when a
    concurrency violation is introduced beside it."""
    bad = tmp_path / "regression.py"
    bad.write_text(
        "import time\n\n\n"
        "async def handler(payload):\n"
        "    time.sleep(0.1)\n"
        "    return payload\n")
    result = lint_paths(
        [str(REPO_ROOT / "src"), str(tmp_path)],
        root=REPO_ROOT, use_cache=False, semantic=True,
    )
    seeded = [violation.rule for violation in result.violations
              if violation.path.endswith("regression.py")]
    assert seeded == ["SIM201"]


def test_seeded_violation_is_caught(tmp_path):
    """End-to-end guarantee: the same pass that blesses the tree still
    fails when a violation is introduced next to it."""
    bad = tmp_path / "regression.py"
    bad.write_text("import random\nVICTIM = random.randint(0, 3)\n")
    result = lint_paths(
        [str(REPO_ROOT / "src"), str(tmp_path)],
        root=REPO_ROOT, use_cache=False,
    )
    assert [violation.rule for violation in result.violations] == ["SIM001"]
