"""The paper's worked example (Section III-C.7, Figures 9 and 10).

Three primitives, nine tiles in scanline order, a cache with room for
exactly two primitives.  Uses:

- blue (prim 0):   tiles 0, 1, 4
- yellow (prim 1): tile 2
- pink (prim 2):   tiles 3, 5, 6, 7, 8

The paper's narrative makes four claims we check directly:

1. the third Polygon List Builder write *bypasses* under OPT (pink's
   first use, tile 3, is farther than everything resident) while LRU
   evicts and writes back;
2. OPT retains yellow and *hits* at tile 2 where LRU misses;
3. at tile 3 OPT evicts yellow — never used again — while LRU keeps it;
4. consequently LRU misses blue at tile 4 where OPT hits.
"""

from repro.caches.policies import make_policy
from repro.caches.set_assoc import SetAssociativeCache
from repro.config import CacheConfig, TCORConfig
from repro.pbuffer.attributes import PBAttributesMap
from repro.pbuffer.pmd import NO_NEXT_TILE
from repro.tcor.attribute_cache import AttributeCache

BLUE, YELLOW, PINK = 0, 1, 2

WRITES = [
    # (primitive, first-use tile, last-use tile)
    (BLUE, 0, 4),
    (YELLOW, 2, 2),
    (PINK, 3, 8),
]
READS = [
    # (tile, primitive, next-use tile after this one)
    (0, BLUE, 1),
    (1, BLUE, 4),
    (2, YELLOW, NO_NEXT_TILE),
    (3, PINK, 5),
    (4, BLUE, NO_NEXT_TILE),
    (5, PINK, 6),
    (6, PINK, 7),
    (7, PINK, 8),
    (8, PINK, NO_NEXT_TILE),
]


def run_opt():
    """The example on the real TCOR Attribute Cache (2-primitive room)."""
    config = TCORConfig(
        primitive_list_cache=CacheConfig("pl", 1024),
        attribute_buffer_bytes=2 * 48,     # two 1-attribute primitives
        primitive_buffer_associativity=2,  # one set of two lines
        use_xor_indexing=False,
    )
    cache = AttributeCache(config, PBAttributesMap([1, 1, 1]),
                           inflight_window=1)
    events = []
    for prim, first, last in WRITES:
        outcome = cache.write(prim, 1, first, last)
        events.append(("write", prim, outcome))
    for tile, prim, next_use in READS:
        outcome = cache.read(prim, 1, next_use,
                             last_use_rank=dict(
                                 (p, l) for p, f, l in WRITES)[prim])
        # The example's Rasterizer consumes each primitive before the
        # next tile is fetched, so no lock survives across reads.
        cache.drain_inflight()
        events.append(("read", tile, prim, outcome))
    return cache, events


def run_lru():
    """The same access stream on a 2-line LRU cache (the figure's left)."""
    cache = SetAssociativeCache(1, 2, 1, make_policy("lru"))
    l2_reads = l2_writes = 0
    outcomes = []
    for prim, _first, _last in WRITES:
        result = cache.access(prim, is_write=True)
        if result.writeback:
            l2_writes += 1
        outcomes.append(result)
    for _tile, prim, _next in READS:
        result = cache.access(prim, is_write=False)
        if not result.hit:
            l2_reads += 1
        if result.writeback:
            l2_writes += 1
        outcomes.append(result)
    return cache, outcomes, l2_reads, l2_writes


class TestOptSide:
    def test_third_write_bypasses(self):
        _cache, events = run_opt()
        kind, prim, outcome = events[2]
        assert (kind, prim) == ("write", PINK)
        assert outcome.bypassed
        assert all(not events[i][2].bypassed for i in (0, 1))

    def test_yellow_hits_at_tile_2(self):
        _cache, events = run_opt()
        read_events = {tile: outcome
                       for kind, tile, _prim, outcome in events[3:]
                       if kind == "read"
                       for kind2, tile2 in [(kind, tile)]}
        _cache2, events2 = run_opt()
        by_tile = {e[1]: e[3] for e in events2 if e[0] == "read"}
        assert by_tile[2].hit

    def test_yellow_evicted_at_tile_3_not_blue(self):
        cache, events = run_opt()
        by_tile = {e[1]: (e[2], e[3]) for e in events if e[0] == "read"}
        prim, outcome = by_tile[3]
        assert prim == PINK and not outcome.hit
        # Yellow (no next use) was the victim; blue survives to tile 4.
        assert by_tile[4][1].hit

    def test_opt_l2_reads_only_for_pink_refetch(self):
        _cache, events = run_opt()
        reads = [e for e in events if e[0] == "read"]
        misses = [tile for _k, tile, _p, outcome in reads if not outcome.hit]
        assert misses == [3]  # pink was bypassed at write time


class TestLruSide:
    def test_third_write_evicts_and_writes_back(self):
        _cache, outcomes, _r, _w = run_lru()
        assert outcomes[2].writeback  # blue, dirty, written back

    def test_yellow_misses_at_tile_2(self):
        _cache, outcomes, _r, _w = run_lru()
        by_tile = dict(zip([t for t, _p, _n in READS], outcomes[3:]))
        assert not by_tile[2].hit

    def test_blue_misses_at_tile_4(self):
        _cache, outcomes, _r, _w = run_lru()
        by_tile = dict(zip([t for t, _p, _n in READS], outcomes[3:]))
        assert not by_tile[4].hit


class TestComparison:
    def test_opt_strictly_fewer_l2_events_than_lru(self):
        _cache, events = run_opt()
        opt_reads = sum(1 for e in events
                        if e[0] == "read" and not e[3].hit)
        opt_writes = sum(len([r for r in e[-1].l2_requests if r.is_write])
                         for e in events)
        _c, _o, lru_reads, lru_writes = run_lru()
        # In the paper's walk-through OPT performs strictly fewer L2 reads
        # (2 misses avoided) and no more writes.
        assert opt_reads < lru_reads
        assert opt_writes <= lru_writes + 1
