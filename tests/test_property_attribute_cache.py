"""Property-based tests on the TCOR Attribute Cache.

Random but *well-formed* PB access sequences (every primitive written
once, then read in traversal order with correct OPT numbers) must never
corrupt the Attribute Buffer's free list, leak entries, or disagree with
the primitive-buffer occupancy.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.config import CacheConfig, TCORConfig
from repro.pbuffer.attributes import PBAttributesMap
from repro.pbuffer.pmd import NO_NEXT_TILE
from repro.tcor.attribute_cache import AttributeCache


@st.composite
def pb_workloads(draw):
    """A miniature frame: primitive attribute counts plus per-tile reads."""
    num_primitives = draw(st.integers(min_value=1, max_value=24))
    attr_counts = [draw(st.integers(min_value=1, max_value=4))
                   for _ in range(num_primitives)]
    num_tiles = draw(st.integers(min_value=1, max_value=12))
    uses = {}
    for prim in range(num_primitives):
        tiles = draw(st.sets(st.integers(0, num_tiles - 1),
                             min_size=1, max_size=num_tiles))
        uses[prim] = sorted(tiles)
    return attr_counts, num_tiles, uses


@given(workload=pb_workloads(),
       entries=st.sampled_from([4, 8, 16]),
       window=st.sampled_from([1, 4, 32]))
@settings(max_examples=60, deadline=None)
def test_attribute_cache_structural_invariants(workload, entries, window):
    attr_counts, num_tiles, uses = workload
    config = TCORConfig(
        primitive_list_cache=CacheConfig("pl", 1024),
        attribute_buffer_bytes=entries * 48,
        primitive_buffer_associativity=2,
        use_xor_indexing=False,
    )
    if max(attr_counts) > config.attribute_buffer_entries:
        return  # a primitive that can never fit is rejected by design
    cache = AttributeCache(config, PBAttributesMap(attr_counts),
                           inflight_window=window)

    # Binning phase: one write per primitive, first-use OPT number.
    for prim, count in enumerate(attr_counts):
        cache.write(prim, count, uses[prim][0], uses[prim][-1])
        cache.buffer.check_invariants()

    # Fetch phase: traversal-ordered reads with chained OPT numbers.
    for tile in range(num_tiles):
        for prim in range(len(attr_counts)):
            ranks = uses[prim]
            if tile not in ranks:
                continue
            future = [r for r in ranks if r > tile]
            opt = future[0] if future else NO_NEXT_TILE
            outcome = cache.read(prim, attr_counts[prim], opt, ranks[-1])
            assert outcome.hit or outcome.l2_requests
            cache.buffer.check_invariants()

    # Teardown: everything drains; no entry leaks.
    cache.flush()
    cache.buffer.check_invariants()
    assert cache.buffer.used_entries == 0
    assert cache.resident_primitives() == 0


@given(workload=pb_workloads())
@settings(max_examples=40, deadline=None)
def test_resident_attribute_count_matches_buffer_usage(workload):
    attr_counts, _num_tiles, uses = workload
    config = TCORConfig(
        primitive_list_cache=CacheConfig("pl", 1024),
        attribute_buffer_bytes=32 * 48,
        primitive_buffer_associativity=4,
        use_xor_indexing=True,
    )
    cache = AttributeCache(config, PBAttributesMap(attr_counts))
    for prim, count in enumerate(attr_counts):
        cache.write(prim, count, uses[prim][0], uses[prim][-1])
    resident = [
        line for lines in cache._sets for line in lines.values()
    ]
    assert cache.buffer.used_entries == \
        sum(line.num_attributes for line in resident)
    # Every resident line's chain belongs to the right primitive.
    for line in resident:
        assert cache.buffer.chain_primitive(line.abp) == line.primitive_id
        assert len(cache.buffer.chain(line.abp)) == line.num_attributes
