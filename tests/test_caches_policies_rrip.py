"""SRRIP / BRRIP / DRRIP."""

import pytest

from repro.caches.policies import make_policy
from repro.caches.policies.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.caches.set_assoc import SetAssociativeCache


def cache_with(policy, num_sets=1, ways=4):
    return SetAssociativeCache(num_sets=num_sets, ways=ways, line_bytes=64,
                               policy=policy)


class TestSRRIP:
    def test_insertion_is_long_not_distant(self):
        policy = SRRIPPolicy(m_bits=2)
        assert policy.long_interval == 2
        assert policy.distant == 3

    def test_hit_promotes_to_zero(self):
        policy = SRRIPPolicy()
        cache = cache_with(policy)
        cache.access(0)
        cache.access(0)
        assert policy._rrpv[0][cache.line_address(0)] == 0

    def test_scan_resistance(self):
        """A re-referenced line (RRPV 0) survives scans that evict it
        under LRU.  The hot line needs one re-reference to earn its
        near-immediate prediction — that is SRRIP's mechanism."""
        srrip = cache_with(SRRIPPolicy(), ways=4)
        lru = cache_with(make_policy("lru"), ways=4)
        stream = []
        for round_index in range(40):
            stream.extend([0, 0])                 # hot line, re-referenced
            stream.extend(100 + round_index * 5 + i for i in range(5))
        hot_misses = {"srrip": 0, "lru": 0}
        for name, cache in (("srrip", srrip), ("lru", lru)):
            for line in stream:
                result = cache.access(line * 64)
                if line == 0 and not result.hit:
                    hot_misses[name] += 1
        assert hot_misses["srrip"] == 1      # compulsory only
        assert hot_misses["lru"] == 40       # evicted by every scan

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            SRRIPPolicy(m_bits=0)


class TestBRRIP:
    def test_mostly_distant_insertions(self):
        policy = BRRIPPolicy(m_bits=2, long_every=32)
        values = [policy._insertion_rrpv(0) for _ in range(64)]
        assert values.count(policy.long_interval) == 2
        assert values.count(policy.distant) == 62

    def test_reset_restarts_counter(self):
        policy = BRRIPPolicy(long_every=4)
        for _ in range(3):
            policy._insertion_rrpv(0)
        policy.reset()
        values = [policy._insertion_rrpv(0) for _ in range(4)]
        assert values[-1] == policy.long_interval


class TestDRRIP:
    def test_leader_sets_assigned(self):
        policy = DRRIPPolicy(dueling_period=32)
        assert policy._leader_kind(0) == "srrip"
        assert policy._leader_kind(16) == "brrip"
        assert policy._leader_kind(5) is None

    def test_psel_moves_on_leader_misses(self):
        policy = DRRIPPolicy()
        start = policy._psel
        policy._insertion_rrpv(0)      # srrip leader miss
        assert policy._psel == start + 1
        policy._insertion_rrpv(16)     # brrip leader miss
        assert policy._psel == start

    def test_followers_follow_the_winner(self):
        policy = DRRIPPolicy()
        policy._psel = 0               # SRRIP is winning
        assert policy._insertion_rrpv(3) == policy.long_interval
        policy._psel = policy._psel_max  # BRRIP is winning
        assert policy._insertion_rrpv(3) == policy.distant

    def test_runs_on_a_real_cache(self):
        cache = cache_with(make_policy("drrip"), num_sets=64, ways=4)
        import random
        rng = random.Random(3)
        for _ in range(5000):
            cache.access(rng.randrange(2048) * 64)
        assert cache.stats.accesses == 5000
        assert 0 < cache.stats.misses <= 5000
