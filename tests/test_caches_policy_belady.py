"""Offline Belady OPT: optimality and bookkeeping."""

import random

import pytest

from repro.caches.mattson import lru_miss_curve
from repro.caches.policies import BeladyOPT, make_policy
from repro.caches.policies.belady import NEVER, next_use_table
from repro.caches.fully_assoc import fully_associative_cache
from repro.caches.set_assoc import SetAssociativeCache


class TestNextUseTable:
    def test_simple(self):
        assert next_use_table([1, 2, 1, 3, 2]) == [2, 4, NEVER, NEVER, NEVER]

    def test_empty(self):
        assert next_use_table([]) == []

    def test_all_unique(self):
        assert next_use_table([5, 6, 7]) == [NEVER] * 3


class TestBeladyOptimality:
    @pytest.mark.parametrize("capacity", [2, 4, 8, 16])
    def test_never_worse_than_any_practical_policy(self, capacity):
        rng = random.Random(11)
        trace = [rng.randrange(24) for _ in range(3000)]
        opt = fully_associative_cache(capacity * 64, 64,
                                      BeladyOPT.from_trace(trace))
        for line in trace:
            opt.access(line * 64)
        for name in ("lru", "mru", "fifo", "srrip"):
            other = fully_associative_cache(capacity * 64, 64,
                                            make_policy(name))
            for line in trace:
                other.access(line * 64)
            assert opt.stats.misses <= other.stats.misses, name

    def test_classic_belady_example(self):
        # Belady's textbook sequence with capacity 3.
        trace = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        opt = fully_associative_cache(3 * 64, 64, BeladyOPT.from_trace(trace))
        for line in trace:
            opt.access(line * 64)
        # Known OPT miss count for this sequence and capacity: 7.
        assert opt.stats.misses == 7

    def test_set_associative_opt_beats_lru_per_set(self):
        rng = random.Random(5)
        trace = [rng.randrange(64) for _ in range(4000)]
        opt_cache = SetAssociativeCache(4, 4, 64, BeladyOPT.from_trace(trace))
        lru_cache = SetAssociativeCache(4, 4, 64, make_policy("lru"))
        for line in trace:
            opt_cache.access(line * 64)
            lru_cache.access(line * 64)
        assert opt_cache.stats.misses <= lru_cache.stats.misses

    def test_miss_count_matches_mattson_at_large_capacity(self):
        # With capacity >= distinct lines, OPT misses == compulsory == LRU.
        rng = random.Random(2)
        trace = [rng.randrange(16) for _ in range(500)]
        opt = fully_associative_cache(16 * 64, 64,
                                      BeladyOPT.from_trace(trace))
        for line in trace:
            opt.access(line * 64)
        assert opt.stats.misses == lru_miss_curve(trace, [16])[16] == 16

    def test_overrunning_the_trace_raises(self):
        opt = fully_associative_cache(2 * 64, 64, BeladyOPT.from_trace([1]))
        opt.access(64)
        with pytest.raises(IndexError):
            opt.access(2 * 64)
