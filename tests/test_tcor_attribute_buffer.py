"""The Attribute Buffer: linked lists, free list, locks."""

import pytest

from repro.tcor.attribute_buffer import AttributeBuffer


class TestAllocation:
    def test_allocate_chains_in_order(self):
        buffer = AttributeBuffer(8)
        head = buffer.allocate(primitive_id=7, count=3)
        chain = buffer.chain(head)
        assert len(chain) == 3
        assert buffer.chain_primitive(head) == 7
        assert buffer.free_entries == 5

    def test_free_returns_entries(self):
        buffer = AttributeBuffer(8)
        head = buffer.allocate(0, 5)
        assert buffer.free(head) == 5
        assert buffer.free_entries == 8
        buffer.check_invariants()

    def test_allocation_reuses_freed_entries(self):
        buffer = AttributeBuffer(4)
        first = buffer.allocate(0, 4)
        buffer.free(first)
        second = buffer.allocate(1, 4)
        assert len(buffer.chain(second)) == 4

    def test_cannot_overallocate(self):
        buffer = AttributeBuffer(4)
        buffer.allocate(0, 3)
        assert not buffer.can_allocate(2)
        with pytest.raises(RuntimeError):
            buffer.allocate(1, 2)

    def test_interleaved_alloc_free_fragments_but_chains_work(self):
        buffer = AttributeBuffer(10)
        heads = [buffer.allocate(i, 2) for i in range(5)]
        for head in heads[::2]:
            buffer.free(head)
        replacement = buffer.allocate(9, 5)
        assert len(buffer.chain(replacement)) == 5
        buffer.check_invariants()

    def test_peak_usage_tracked(self):
        buffer = AttributeBuffer(8)
        head = buffer.allocate(0, 6)
        buffer.free(head)
        buffer.allocate(1, 2)
        assert buffer.peak_used == 6


class TestLocks:
    def test_lock_only_first_entry_suffices(self):
        """Paper Section III-C.3: locking the first attribute pins the
        whole chain, since the rest are only reachable through it."""
        buffer = AttributeBuffer(4)
        head = buffer.allocate(0, 3)
        buffer.lock(head)
        assert buffer.is_locked(head)
        with pytest.raises(RuntimeError):
            buffer.free(head)
        buffer.unlock(head)
        assert buffer.free(head) == 3

    def test_invalid_head_rejected(self):
        buffer = AttributeBuffer(4)
        with pytest.raises(RuntimeError):
            buffer.lock(0)  # nothing allocated there
        with pytest.raises(IndexError):
            buffer.lock(99)


class TestInvariants:
    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            AttributeBuffer(0)

    def test_invariants_after_stress(self):
        import random
        rng = random.Random(0)
        buffer = AttributeBuffer(64)
        live = {}
        for step in range(500):
            if live and (rng.random() < 0.5 or buffer.free_entries < 8):
                prim = rng.choice(list(live))
                buffer.free(live.pop(prim))
            else:
                count = rng.randint(1, 6)
                if buffer.can_allocate(count):
                    live[step] = buffer.allocate(step, count)
        buffer.check_invariants()
        assert buffer.used_entries == sum(
            len(buffer.chain(head)) for head in live.values())
