"""End-to-end system simulation invariants (baseline vs TCOR)."""

import pytest

from repro.tcor.system import simulate_baseline, simulate_tcor


@pytest.fixture(scope="module")
def results(tiny_workload):
    return {
        "baseline": simulate_baseline(tiny_workload),
        "tcor": simulate_tcor(tiny_workload),
        "tcor_no_l2": simulate_tcor(tiny_workload, l2_enhancements=False),
    }


class TestHeadlineClaims:
    def test_tcor_reduces_pb_l2_traffic(self, results):
        assert results["tcor"].pb_l2_accesses < \
            results["baseline"].pb_l2_accesses

    def test_tcor_reduces_pb_mm_traffic_dramatically(self, results):
        base = results["baseline"].pb_mm_accesses
        tcor = results["tcor"].pb_mm_accesses
        assert tcor <= base * 0.2  # the paper eliminates ~93% on average

    def test_tcor_reduces_total_mm_traffic(self, results):
        assert results["tcor"].mm_accesses < results["baseline"].mm_accesses

    def test_l2_enhancements_needed_for_mm_elimination(self, results):
        assert results["tcor"].pb_mm_accesses < \
            results["tcor_no_l2"].pb_mm_accesses

    def test_l1_reorganization_same_l2_traffic_either_way(self, results):
        # The L2 policy does not change what the L1s send down.
        assert results["tcor"].pb_l2_accesses == \
            results["tcor_no_l2"].pb_l2_accesses

    def test_dead_writebacks_only_with_enhancements(self, results):
        assert results["tcor"].dead_writebacks_avoided > 0
        assert results["tcor_no_l2"].dead_writebacks_avoided == 0


class TestAccountingConsistency:
    def test_attr_reads_match_trace(self, results, tiny_workload):
        expected = tiny_workload.traces[0].num_primitive_reads
        assert results["tcor"].attr_reads == expected
        assert results["baseline"].attr_reads == expected

    def test_mm_split_sums(self, results):
        for result in results.values():
            assert result.mm_accesses == result.mm_reads + result.mm_writes
            assert result.pb_mm_accesses <= result.mm_accesses

    def test_structure_access_keys(self, results):
        assert "tile_cache" in results["baseline"].structure_accesses
        assert "primitive_list_cache" in results["tcor"].structure_accesses
        assert "attribute_buffer" in results["tcor"].structure_accesses
        for result in results.values():
            assert result.structure_accesses["dram"] == result.mm_accesses

    def test_hit_ratio_bounds(self, results):
        assert 0.0 <= results["tcor"].attr_read_hit_ratio <= 1.0


class TestOptions:
    def test_background_can_be_disabled(self, tiny_workload):
        quiet = simulate_tcor(tiny_workload, include_background=False)
        noisy = simulate_tcor(tiny_workload)
        assert quiet.mm_accesses < noisy.mm_accesses
        # PB L1-level behaviour is independent of background traffic.
        assert quiet.attr_read_hits == noisy.attr_read_hits

    def test_contiguous_layout_hurts_tcor(self, tiny_workload):
        interleaved = simulate_tcor(tiny_workload)
        contiguous = simulate_tcor(tiny_workload, interleaved_lists=False)
        assert interleaved.pb_l2_accesses <= contiguous.pb_l2_accesses

    def test_larger_tile_cache_helps_baseline(self, tiny_workload_low_reuse):
        small = simulate_baseline(tiny_workload_low_reuse,
                                  tile_cache_bytes=16 * 1024)
        large = simulate_baseline(tiny_workload_low_reuse,
                                  tile_cache_bytes=256 * 1024)
        assert large.pb_l2_accesses < small.pb_l2_accesses

    def test_deterministic(self, tiny_workload):
        first = simulate_tcor(tiny_workload)
        second = simulate_tcor(tiny_workload)
        assert first.pb_l2_accesses == second.pb_l2_accesses
        assert first.mm_accesses == second.mm_accesses
