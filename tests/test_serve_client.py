"""The cluster-aware client: endpoints, typed failures, negotiation.

Every failure path must raise :class:`ServeClientError` — never a bare
``OSError`` — and the wire-schema version field must let adjacent
versions interoperate while rejecting distant ones with the typed 426.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.serve import (
    SCHEMA_VERSION,
    InProcessServer,
    JobRequest,
    ServeClient,
    ServeClientError,
)
from repro.serve.client import _normalize_endpoints

SCALE = 0.05


@pytest.fixture(scope="module")
def server():
    with InProcessServer(jobs=1, batch_window_s=0.02) as live:
        yield live


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestEndpointForms:
    def test_host_port_pair(self):
        assert _normalize_endpoints("h", 1, None) == [("h", 1)]

    def test_single_address_string(self):
        assert _normalize_endpoints("h:1", 0, None) == [("h", 1)]

    def test_tuple_form(self):
        assert _normalize_endpoints(("h", 1), 0, None) == [("h", 1)]

    def test_list_of_addresses(self):
        assert _normalize_endpoints(["h:1", ("g", 2)], 0, None) \
            == [("h", 1), ("g", 2)]

    def test_endpoints_keyword(self):
        assert _normalize_endpoints("ignored", 0, ["h:1"]) == [("h", 1)]

    def test_malformed_address_is_typed(self):
        with pytest.raises(ServeClientError) as info:
            _normalize_endpoints(["nocolon"], 0, None)
        assert info.value.code == "bad_endpoint"

    def test_empty_list_is_typed(self):
        with pytest.raises(ServeClientError) as info:
            _normalize_endpoints([], 0, None)
        assert info.value.code == "bad_endpoint"


class TestTypedFailures:
    def test_refused_connection_is_connect_failed(self):
        with pytest.raises(ServeClientError) as info:
            ServeClient("127.0.0.1", free_port(), timeout_s=2.0)
        assert info.value.code == "connect_failed"
        assert info.value.http_status == 502

    def test_socket_timeout_is_a_typed_timeout(self):
        """A server that accepts but never replies must surface as
        code="timeout", not a bare socket.timeout."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        accepted: list[socket.socket] = []

        def accept_and_hold():
            conn, _ = listener.accept()
            accepted.append(conn)  # keep it open, answer nothing

        thread = threading.Thread(target=accept_and_hold, daemon=True)
        thread.start()
        try:
            client = ServeClient("127.0.0.1", port, timeout_s=0.3)
            with pytest.raises(ServeClientError) as info:
                client.healthz()
            assert info.value.code == "timeout"
            assert info.value.http_status == 504
            client.close()
        finally:
            for conn in accepted:
                conn.close()
            listener.close()

    def test_disconnect_mid_call_is_typed(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def accept_and_slam():
            conn, _ = listener.accept()
            conn.close()

        thread = threading.Thread(target=accept_and_slam, daemon=True)
        thread.start()
        try:
            client = ServeClient("127.0.0.1", port, timeout_s=5.0)
            with pytest.raises(ServeClientError) as info:
                client.healthz()
            assert info.value.code == "disconnected"
            client.close()
        finally:
            listener.close()

    def test_close_is_idempotent(self, server):
        client = server.client()
        client.close()
        client.close()  # second close must be a no-op

    def test_context_manager_after_failed_call_closes_cleanly(self):
        """__exit__ after the connection already died must not raise."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        thread = threading.Thread(
            target=lambda: listener.accept()[0].close(), daemon=True)
        thread.start()
        try:
            with ServeClient("127.0.0.1", port, timeout_s=5.0) as client:
                with pytest.raises(ServeClientError):
                    client.healthz()
        finally:
            listener.close()


class TestFailover:
    def test_dead_first_endpoint_falls_through(self, server):
        client = ServeClient(
            endpoints=[f"127.0.0.1:{free_port()}",
                       f"{server.host}:{server.port}"],
            timeout_s=10.0)
        try:
            assert client.healthz()["ok"] is True
            assert client.port == server.port
        finally:
            client.close()

    def test_all_dead_endpoints_typed(self):
        with pytest.raises(ServeClientError) as info:
            ServeClient(endpoints=[f"127.0.0.1:{free_port()}",
                                   f"127.0.0.1:{free_port()}"],
                        timeout_s=2.0)
        assert info.value.code == "connect_failed"

    def test_run_retries_on_the_survivor(self, server):
        """A submission that lands on a dead connection is retried on
        the next endpoint — deterministic keys make that idempotent."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        dead_port = listener.getsockname()[1]
        thread = threading.Thread(
            target=lambda: listener.accept()[0].close(), daemon=True)
        thread.start()
        try:
            client = ServeClient(
                endpoints=[f"127.0.0.1:{dead_port}",
                           f"{server.host}:{server.port}"],
                timeout_s=120.0)
            result = client.run(JobRequest(alias="GTr", scale=SCALE),
                                timeout_s=300)
            assert result.state == "done"
            client.close()
        finally:
            listener.close()


class TestVersionNegotiation:
    def test_healthz_advertises_the_schema_version(self, server):
        with server.client() as client:
            assert client.healthz()["schema_version"] == SCHEMA_VERSION

    def test_adjacent_version_interoperates(self, server):
        with server.client() as client:
            reply = client.call({"op": "healthz",
                                 "v": SCHEMA_VERSION - 1})
            assert reply["ok"] is True

    def test_distant_version_is_a_typed_426(self, server):
        with server.client() as client:
            with pytest.raises(ServeClientError) as info:
                client.call({"op": "healthz", "v": SCHEMA_VERSION + 2})
        assert info.value.code == "version_mismatch"
        assert info.value.http_status == 426

    def test_non_integer_version_is_a_bad_request(self, server):
        with server.client() as client:
            with pytest.raises(ServeClientError) as info:
                client.call({"op": "healthz", "v": "latest"})
        assert info.value.code == "bad_request"
