"""Hot-path tuning gate: tuned and reference paths are bit-identical.

The acceptance bar for any micro-optimization of the simulator core:
with the pre-tuning reference implementations of ``_send`` /
``_send_background`` / ``_writeback_pb_lines`` swapped in, every
``SystemResult`` counter — top-level ints and the structure-access
breakdown — must equal the tuned path exactly, for all ten Table II
benchmarks at scale 0.2, on both memory organizations.  Equality is
dataclass equality over integer counters, i.e. bit-identity, asserted
rather than inspected.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import KIB, TCORConfig
from repro.perf import reference
from repro.tcor import system
from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS, build_workload

EQUIVALENCE_SCALE = 0.2
TILE_CACHE_BYTES = 64 * KIB


def _swap(monkeypatch) -> None:
    monkeypatch.setattr(system, "_send", reference.reference_send)
    monkeypatch.setattr(system, "_send_background",
                        reference.reference_send_background)
    monkeypatch.setattr(system, "_writeback_pb_lines",
                        reference.reference_writeback_pb_lines)


@pytest.mark.parametrize("alias", BENCHMARK_ORDER)
def test_counters_bit_identical_before_and_after_tuning(alias, monkeypatch):
    workload = build_workload(BENCHMARKS[alias], scale=EQUIVALENCE_SCALE)
    tcor_config = TCORConfig.for_total_size(TILE_CACHE_BYTES)

    tuned_baseline = system.simulate_baseline(
        workload, tile_cache_bytes=TILE_CACHE_BYTES)
    tuned_tcor = system.simulate_tcor(workload, tcor=tcor_config)

    _swap(monkeypatch)
    ref_baseline = system.simulate_baseline(
        workload, tile_cache_bytes=TILE_CACHE_BYTES)
    ref_tcor = system.simulate_tcor(workload, tcor=tcor_config)

    # Field-by-field so a regression names the exact counter.
    for tuned, ref in ((tuned_baseline, ref_baseline),
                       (tuned_tcor, ref_tcor)):
        for field in dataclasses.fields(type(tuned)):
            assert getattr(tuned, field.name) == getattr(ref, field.name), \
                f"{alias}: {tuned.label}.{field.name} diverged"
