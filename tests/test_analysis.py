"""Lower bound and miss-curve analysis."""

import pytest

from repro.analysis import (
    attribute_access_trace,
    lower_bound_misses,
    lower_bound_ratio,
    policy_miss_ratio,
    primitives_capacity,
    suite_miss_curve,
)
from repro.analysis.miss_curves import lru_fully_associative_curve


class TestLowerBound:
    def test_formula_small_cache(self):
        # 1000 primitives, room for 128: LB = 1000 + 872 (paper's example).
        assert lower_bound_misses(1000, 128) == 1872

    def test_formula_large_cache(self):
        assert lower_bound_misses(1000, 1000) == 1000
        assert lower_bound_misses(1000, 5000) == 1000

    def test_ratio(self):
        assert lower_bound_ratio(10, 10, 100) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            lower_bound_misses(-1, 5)
        with pytest.raises(ValueError):
            lower_bound_ratio(5, 5, 0)

    def test_primitives_capacity(self):
        # 3 block-aligned attributes = 192 bytes per primitive.
        assert primitives_capacity(192 * 10, 3.0) == 10
        assert primitives_capacity(64, 3.0) == 1  # floor of one


class TestTraceExtraction:
    def test_writes_then_reads(self, tiny_workload):
        trace = attribute_access_trace(tiny_workload)
        tiling = tiny_workload.traces[0]
        writes = tiling.num_binned_primitives
        reads = tiling.num_primitive_reads
        assert len(trace) == writes + reads
        # The first `writes` entries are each primitive's single write.
        assert len(set(trace[:writes])) == writes


class TestCurves:
    def test_opt_at_least_lower_bound(self, tiny_workload):
        trace = attribute_access_trace(tiny_workload)
        total_primitives = len(set(trace))
        for capacity in (8, 32, 96):
            ratio = policy_miss_ratio(trace, capacity, "belady")
            bound = lower_bound_ratio(total_primitives, capacity, len(trace))
            assert ratio >= bound - 1e-9

    def test_opt_below_lru_everywhere(self, tiny_workload):
        trace = attribute_access_trace(tiny_workload)
        for capacity in (8, 32, 96):
            opt = policy_miss_ratio(trace, capacity, "belady")
            lru = policy_miss_ratio(trace, capacity, "lru")
            assert opt <= lru + 1e-9

    def test_mattson_shortcut_matches_direct_lru(self, tiny_workload):
        trace = attribute_access_trace(tiny_workload)
        capacities = [8, 32, 96]
        fast = lru_fully_associative_curve(trace, capacities)
        for capacity in capacities:
            direct = policy_miss_ratio(trace, capacity, "lru")
            assert fast[capacity] == pytest.approx(direct)

    def test_suite_curve_structure(self, tiny_workload):
        curve = suite_miss_curve([tiny_workload], [8, 16], "lru",
                                 include_lower_bound=True)
        assert curve["sizes_kib"] == [8, 16]
        assert len(curve["miss_ratio"]) == 2
        assert len(curve["lower_bound"]) == 2
        assert curve["miss_ratio"][1] <= curve["miss_ratio"][0]

    def test_set_associative_sweep(self, tiny_workload):
        trace = attribute_access_trace(tiny_workload)
        direct_mapped = policy_miss_ratio(trace, 64, "lru", associativity=1)
        fully = policy_miss_ratio(trace, 64, "lru", associativity=None)
        assert fully <= direct_mapped + 0.05

    def test_empty_trace(self):
        assert policy_miss_ratio([], 8, "lru") == 0.0
