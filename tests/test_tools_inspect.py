"""Workload inspector."""

import subprocess
import sys

from repro.tools.inspect_workload import inspect


def test_inspect_reports_all_sections():
    report = inspect("GTr", scale=0.06)
    for expected in ("Gravitytetris", "PB footprint", "measured reuse",
                     "tiles occupied", "list lengths", "prim reuse",
                     "next-use dist", "last uses"):
        assert expected in report


def test_cli_runs():
    completed = subprocess.run(
        [sys.executable, "-m", "repro.tools.inspect_workload",
         "--benchmark", "GTr", "--scale", "0.05"],
        capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0
    assert "Gravitytetris" in completed.stdout
