"""Shared fixtures: small screens and reduced-scale workloads.

Full-scale (paper-sized) simulations live in benchmarks/; tests use
small geometry so the whole suite stays fast while exercising every
code path.
"""

from __future__ import annotations

import pytest

from repro.config import ScreenConfig
from repro.geometry.primitives import Primitive, Vertex
from repro.workloads.suite import BENCHMARKS, build_workload


@pytest.fixture(scope="session")
def small_screen() -> ScreenConfig:
    """An 8x4 = 32-tile screen: big enough for traversal structure,
    small enough for exhaustive checks."""
    return ScreenConfig(width=256, height=128, tile_size=32)


@pytest.fixture(scope="session")
def paper_screen() -> ScreenConfig:
    """The Table I screen (1960x768, 32x32 tiles)."""
    return ScreenConfig()


@pytest.fixture(scope="session")
def tiny_workload():
    """A reduced CCS workload shared by integration tests."""
    return build_workload(BENCHMARKS["CCS"], scale=0.08)


@pytest.fixture(scope="session")
def tiny_workload_low_reuse():
    """A reduced DDS workload (low reuse, large footprint profile)."""
    return build_workload(BENCHMARKS["DDS"], scale=0.04)


def make_triangle(prim_id: int, x: float, y: float, size: float = 20.0,
                  num_attributes: int = 3) -> Primitive:
    """A right triangle with legs ``size`` anchored at (x, y)."""
    return Primitive(
        prim_id,
        Vertex(x, y),
        Vertex(x + size, y),
        Vertex(x, y + size),
        num_attributes=num_attributes,
    )
