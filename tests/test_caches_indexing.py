"""Set-indexing functions."""

import pytest

from repro.caches.indexing import ModuloIndexing, XorIndexing


class TestModulo:
    def test_basic(self):
        indexing = ModuloIndexing(256)
        assert indexing.set_of(0) == 0
        assert indexing.set_of(257) == 1

    def test_power_of_two_stride_pathology(self):
        """The baseline PB-Lists problem: 64-line strides hit few sets."""
        indexing = ModuloIndexing(256)
        sets = {indexing.set_of(tile * 64) for tile in range(1000)}
        assert len(sets) == 4  # 256 / gcd(64, 256) = 4 distinct sets

    def test_needs_positive_sets(self):
        with pytest.raises(ValueError):
            ModuloIndexing(0)


class TestXor:
    def test_in_range(self):
        indexing = XorIndexing(256)
        for address in range(0, 1 << 16, 97):
            assert 0 <= indexing.set_of(address) < 256

    def test_spreads_power_of_two_strides(self):
        """XOR folding breaks the stride pathology (paper Section III-C.2)."""
        indexing = XorIndexing(256)
        sets = {indexing.set_of(tile * 64) for tile in range(1000)}
        assert len(sets) > 128

    def test_non_power_of_two_sets(self):
        indexing = XorIndexing(96)
        seen = {indexing.set_of(address) for address in range(10000)}
        assert max(seen) < 96
        assert len(seen) == 96

    def test_deterministic(self):
        indexing = XorIndexing(128)
        assert indexing.set_of(123456) == indexing.set_of(123456)
