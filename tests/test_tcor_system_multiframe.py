"""Multi-frame simulation: the Parameter Buffer is rebuilt per frame."""

import pytest

from repro.tcor.system import simulate_baseline, simulate_tcor
from repro.workloads.suite import BENCHMARKS, build_workload


@pytest.fixture(scope="module")
def two_frames():
    return build_workload(BENCHMARKS["GTr"], scale=0.08, frames=2)


def test_two_frames_roughly_double_pb_traffic(two_frames):
    one = build_workload(BENCHMARKS["GTr"], scale=0.08, frames=1)
    single = simulate_tcor(one)
    double = simulate_tcor(two_frames)
    assert double.pb_l2_accesses == pytest.approx(
        2 * single.pb_l2_accesses, rel=0.25)


def test_pb_never_survives_a_frame_boundary(two_frames):
    """TCOR drops every PB line at frame end (all dead), so the second
    frame starts cold: PB DRAM traffic stays zero-ish across frames."""
    result = simulate_tcor(two_frames)
    assert result.pb_mm_accesses <= result.pb_l2_accesses * 0.05


def test_baseline_pays_per_frame_writebacks(two_frames):
    base = simulate_baseline(two_frames)
    tcor = simulate_tcor(two_frames)
    assert base.pb_mm_writes > tcor.pb_mm_writes


def test_tile_progress_resets_between_frames(two_frames):
    # Would raise inside TileProgress.tile_done if ranks went backwards
    # without the per-frame reset.
    simulate_tcor(two_frames)
