"""Edge cases across small modules: stats, trace records, fragments,
requests, blend validation, sensitivity experiments."""

import pytest

from repro.caches.stats import CacheStats
from repro.experiments.common import SimulationCache
from repro.experiments.sensitivity import (
    run_hierarchical_lists,
    run_tile_cache_split,
    run_traversal_orders,
)
from repro.raster.blend import BlendMode, blend
from repro.tcor.requests import L2Request
from repro.workloads.trace import Access, Op, Region


class TestCacheStats:
    def test_empty_stats(self):
        stats = CacheStats()
        assert stats.miss_ratio == 0.0
        assert stats.hits == 0
        assert stats.region_accesses(0) == 0
        assert stats.region_misses(0) == 0

    def test_record_paths(self):
        stats = CacheStats()
        stats.record(is_write=False, hit=True, region=1)
        stats.record(is_write=True, hit=False, region=1)
        stats.record(is_write=False, hit=False, region=None)
        assert stats.accesses == 3
        assert stats.misses == 2
        assert stats.region_accesses(1) == 2
        assert stats.region_misses(1) == 1
        assert stats.miss_ratio == pytest.approx(2 / 3)


class TestTraceRecords:
    def test_region_pb_classification(self):
        assert Region.PB_LISTS.is_parameter_buffer
        assert Region.PB_ATTRIBUTES.is_parameter_buffer
        assert not Region.TEXTURE.is_parameter_buffer
        assert not Region.FRAMEBUFFER.is_parameter_buffer

    def test_access_is_write(self):
        read = Access(Op.READ, Region.TEXTURE, 0x100)
        write = Access(Op.WRITE, Region.FRAMEBUFFER, 0x200)
        assert not read.is_write
        assert write.is_write

    def test_access_records_hashable_and_frozen(self):
        access = Access(Op.READ, Region.VERTEX, 64)
        assert access in {access}
        with pytest.raises(AttributeError):
            access.address = 0


class TestL2Request:
    def test_defaults(self):
        request = L2Request(address=64, is_write=True,
                            region=Region.PB_LISTS)
        assert request.last_tile_rank is None

    def test_frozen(self):
        request = L2Request(64, False, Region.PB_ATTRIBUTES, 3)
        with pytest.raises(AttributeError):
            request.address = 0


class TestBlendValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            blend((1, 1, 1, 1), (0, 0, 0, 0), "nearest")  # type: ignore

    def test_alpha_accumulates(self):
        out = blend((0, 0, 0, 0.5), (0, 0, 0, 0.5), BlendMode.ALPHA)
        assert out[3] == pytest.approx(0.75)


class TestSensitivityExperiments:
    @pytest.fixture(scope="class")
    def cache(self):
        return SimulationCache(scale=0.06, aliases=("GTr", "Snp"))

    def test_traversal_orders_cover_all_three(self, cache):
        result = run_traversal_orders(alias="GTr", scale=0.06)
        assert [row[0] for row in result.rows] == \
            ["scanline", "serpentine", "z-order"]

    def test_split_sweep_rows(self, cache):
        result = run_tile_cache_split(alias="Snp", cache=cache)
        assert [row[0] for row in result.rows] == \
            ["8+56", "16+48", "24+40", "32+32"]

    def test_hierarchical_savings_bounded(self, cache):
        result = run_hierarchical_lists(cache=cache)
        for row in result.rows:
            assert 0.0 <= row[3] <= 100.0
            assert row[2] <= row[1]  # hierarchical never stores more
