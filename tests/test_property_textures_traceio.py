"""Property-based tests: texture addressing and trace serialization."""

import io

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.pbuffer.pmd import NO_NEXT_TILE, TcorPMD
from repro.textures.texture import BLOCK_BYTES, MipmappedTexture
from repro.textures.sampler import TextureSampler
from repro.tiling.events import (
    AttributeRead,
    AttributeWrite,
    PmdRead,
    PmdWrite,
    TileDone,
)
from repro.tiling.engine import TilingTrace
from repro.tools.trace_io import dump_trace, load_trace

powers = st.sampled_from([8, 16, 64, 256])


@given(width=powers, height=powers,
       u=st.floats(-3, 3, allow_nan=False),
       v=st.floats(-3, 3, allow_nan=False),
       density=st.floats(0.1, 512.0, allow_nan=False))
@settings(max_examples=150, deadline=None)
def test_sample_addresses_inside_the_selected_level(width, height, u, v,
                                                    density):
    texture = MipmappedTexture(0x1000, width, height)
    footprint = TextureSampler(texture).sample(u, v, density)
    level = texture.level(footprint.level)
    for address in footprint.addresses:
        assert level.base <= address < level.base + level.size_bytes
        assert address % BLOCK_BYTES == 0
    assert 1 <= len(footprint.addresses) <= 4


@given(width=powers, height=powers)
@settings(max_examples=60, deadline=None)
def test_mip_levels_partition_the_address_space(width, height):
    texture = MipmappedTexture(0, width, height)
    spans = [(level.base, level.base + level.size_bytes)
             for level in texture.levels]
    for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
        assert a_hi == b_lo  # contiguous, no gaps or overlap
    assert spans[-1][1] == texture.total_bytes


pmds = st.builds(TcorPMD,
                 primitive_id=st.integers(0, (1 << 16) - 1),
                 num_attributes=st.integers(1, 15),
                 opt_number=st.integers(0, NO_NEXT_TILE))

events = st.one_of(
    st.builds(PmdWrite, tile_id=st.integers(0, 4000),
              position=st.integers(0, 1023), pmd=pmds),
    st.builds(AttributeWrite, primitive_id=st.integers(0, 60000),
              num_attributes=st.integers(1, 15),
              opt_number=st.integers(0, NO_NEXT_TILE),
              last_use_rank=st.integers(0, NO_NEXT_TILE)),
    st.builds(PmdRead, tile_id=st.integers(0, 4000),
              tile_rank=st.integers(0, 4000),
              position=st.integers(0, 1023), pmd=pmds),
    st.builds(AttributeRead, primitive_id=st.integers(0, 60000),
              num_attributes=st.integers(1, 15),
              opt_number=st.integers(0, NO_NEXT_TILE),
              tile_rank=st.integers(0, 4000),
              last_use_rank=st.integers(0, NO_NEXT_TILE)),
    st.builds(TileDone, tile_id=st.integers(0, 4000),
              tile_rank=st.integers(0, 4000)),
)


@given(build=st.lists(events, max_size=25),
       fetch=st.lists(events, max_size=25))
@settings(max_examples=80, deadline=None)
def test_trace_io_roundtrip_arbitrary_events(build, fetch):
    trace = TilingTrace(pb=None, build_events=build, fetch_events=fetch)
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    buffer.seek(0)
    loaded_build, loaded_fetch = load_trace(buffer)
    assert loaded_build == build
    assert loaded_fetch == fetch
