"""The heart of TCOR: OPT Numbers emulate Belady on the PB stream.

Offline Belady evicts the line whose next *access index* is farthest;
TCOR's hardware evicts the line whose next *tile* (OPT Number) is
farthest.  Because the Tile Fetcher reads in traversal order, the two
orderings agree except for ties within a single tile — so an
OPT-number-driven cache must match offline Belady's miss count almost
exactly on the Parameter Buffer stream.
"""

import pytest

from repro.caches.line import LineMeta
from repro.caches.policies import BeladyOPT, OptNumberPolicy, make_policy
from repro.caches.set_assoc import SetAssociativeCache
from repro.pbuffer.pmd import NO_NEXT_TILE
from repro.tiling.events import AttributeRead, AttributeWrite


def event_stream(workload):
    """(primitive, opt_number) pairs: binning writes then tile reads."""
    trace = workload.traces[0]
    stream = []
    for event in trace.build_events:
        if isinstance(event, AttributeWrite):
            stream.append((event.primitive_id, event.opt_number))
    for event in trace.fetch_events:
        if isinstance(event, AttributeRead):
            stream.append((event.primitive_id, event.opt_number))
    return stream


def run_policy(stream, capacity, policy):
    cache = SetAssociativeCache(1, capacity, 1, policy)
    for primitive_id, opt_number in stream:
        # NO_NEXT_TILE passes through as-is: it is the greatest possible
        # OPT Number, so "never used again" lines are preferred victims.
        cache.access(primitive_id, meta=LineMeta(opt_number=opt_number))
    return cache.stats.misses


@pytest.mark.parametrize("capacity", [16, 48, 128])
def test_opt_number_matches_offline_belady(tiny_workload, capacity):
    stream = event_stream(tiny_workload)
    belady = run_policy(stream, capacity,
                        BeladyOPT.from_trace([p for p, _ in stream]))
    online = run_policy(stream, capacity, OptNumberPolicy())
    # Ties within one tile may flip individual decisions; the totals must
    # agree to within a small margin.
    assert online == pytest.approx(belady, rel=0.02)


@pytest.mark.parametrize("capacity", [16, 64])
def test_opt_number_beats_lru_on_pb_stream(tiny_workload, capacity):
    stream = event_stream(tiny_workload)
    online = run_policy(stream, capacity, OptNumberPolicy())
    lru = run_policy(stream, capacity, make_policy("lru"))
    assert online <= lru


def test_opt_number_never_below_belady(tiny_workload_low_reuse):
    """Belady is provably optimal: the online policy can match it but
    never beat it."""
    stream = event_stream(tiny_workload_low_reuse)
    for capacity in (32, 96):
        belady = run_policy(stream, capacity,
                            BeladyOPT.from_trace([p for p, _ in stream]))
        online = run_policy(stream, capacity, OptNumberPolicy())
        assert online >= belady
