"""Bounded queues."""

import pytest

from repro.tiling.queues import BoundedQueue


def test_fifo_ordering():
    queue = BoundedQueue()
    for item in (1, 2, 3):
        assert queue.push(item)
    assert queue.pop() == 1
    assert queue.peek() == 2
    assert len(queue) == 2


def test_capacity_rejects_when_full():
    queue = BoundedQueue(capacity=2)
    assert queue.push("a") and queue.push("b")
    assert queue.full
    assert not queue.push("c")
    assert queue.rejected_pushes == 1
    assert queue.total_pushed == 2


def test_unlimited_queue_never_full():
    queue = BoundedQueue(capacity=None)
    for item in range(10_000):
        assert queue.push(item)
    assert not queue.full
    assert queue.peak_occupancy == 10_000


def test_peak_occupancy_tracks_high_water():
    queue = BoundedQueue()
    queue.push(1)
    queue.push(2)
    queue.pop()
    queue.push(3)
    assert queue.peak_occupancy == 2


def test_empty_errors():
    queue = BoundedQueue()
    with pytest.raises(IndexError):
        queue.pop()
    with pytest.raises(IndexError):
        queue.peek()


def test_invalid_capacity():
    with pytest.raises(ValueError):
        BoundedQueue(capacity=0)
