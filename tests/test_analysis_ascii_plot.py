"""ASCII chart rendering."""

import pytest

from repro.analysis.ascii_plot import ChartSeries, ascii_chart, chart_from_result
from repro.experiments.common import ExperimentResult


def test_basic_chart_contains_markers_and_legend():
    chart = ascii_chart([1, 2, 3],
                        [ChartSeries("up", [1.0, 2.0, 3.0]),
                         ChartSeries("down", [3.0, 2.0, 1.0])],
                        width=20, height=8)
    assert "o up" in chart and "x down" in chart
    assert "o" in chart.splitlines()[0] + chart.splitlines()[1]


def test_y_axis_labels_span_data():
    chart = ascii_chart([0, 1], [ChartSeries("s", [10.0, 20.0])],
                        width=10, height=5)
    top = chart.splitlines()[0]
    bottom = chart.splitlines()[4]
    assert float(top.split("|")[0]) > 20.0 * 0.99
    assert float(bottom.split("|")[0]) < 10.0 * 1.01


def test_flat_data_does_not_crash():
    chart = ascii_chart([1, 2], [ChartSeries("flat", [5.0, 5.0])])
    assert "flat" in chart


def test_validation():
    with pytest.raises(ValueError):
        ascii_chart([], [])
    with pytest.raises(ValueError):
        ascii_chart([1, 2], [ChartSeries("bad", [1.0])])


def test_chart_from_result_skips_non_numeric_rows():
    result = ExperimentResult(
        exp_id="x", title="t",
        headers=["size_kib", "a", "b"],
        rows=[[1, 0.5, 0.4], [2, 0.4, 0.3], ["average", "", 0.35]],
    )
    chart = chart_from_result(result, "size_kib")
    assert "o a" in chart and "x b" in chart


def test_chart_from_result_requires_numeric_rows():
    result = ExperimentResult("x", "t", ["size_kib", "a"],
                              rows=[["avg", 1.0]])
    with pytest.raises(ValueError):
        chart_from_result(result, "size_kib")
