"""Configuration objects: Table I values and validation."""

import math

import pytest

from repro.config import (
    DEFAULT_GPU,
    CacheConfig,
    GPUConfig,
    MemoryConfig,
    ParameterBufferConfig,
    ScreenConfig,
    TCORConfig,
)

KIB = 1024


class TestCacheConfig:
    def test_table1_tile_cache(self):
        cache = DEFAULT_GPU.tile_cache
        assert cache.size_bytes == 64 * KIB
        assert cache.line_bytes == 64
        assert cache.associativity == 4
        assert cache.latency_cycles == 1

    def test_table1_l2(self):
        l2 = DEFAULT_GPU.l2_cache
        assert l2.size_bytes == 1024 * KIB
        assert l2.associativity == 8
        assert l2.latency_cycles == 12

    def test_derived_geometry(self):
        cache = CacheConfig("c", 64 * KIB)
        assert cache.num_lines == 1024
        assert cache.num_sets == 256

    def test_fully_associative_variant(self):
        cache = CacheConfig("c", 8 * KIB).fully_associative()
        assert cache.num_sets == 1
        assert cache.associativity == cache.num_lines

    @pytest.mark.parametrize("kwargs", [
        dict(size_bytes=0),
        dict(size_bytes=64 * KIB, line_bytes=48),
        dict(size_bytes=100, line_bytes=64),
        dict(size_bytes=64 * KIB, associativity=0),
        dict(size_bytes=64 * KIB, associativity=3),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CacheConfig("bad", **kwargs)


class TestScreenConfig:
    def test_table1_screen(self):
        screen = DEFAULT_GPU.screen
        assert (screen.width, screen.height) == (1960, 768)
        assert screen.tiles_x == math.ceil(1960 / 32) == 62
        assert screen.tiles_y == 24
        assert screen.num_tiles == 1488

    def test_tile_ids_fit_the_pmd_field(self):
        # TCOR reserves 12 bits for tile IDs / OPT Numbers.
        assert DEFAULT_GPU.screen.num_tiles < (1 << 12)

    def test_tile_of_pixel(self):
        screen = ScreenConfig(64, 64, 32)
        assert screen.tile_of_pixel(0, 0) == 0
        assert screen.tile_of_pixel(33, 0) == 1
        assert screen.tile_of_pixel(0, 33) == 2
        assert screen.tile_of_pixel(63, 63) == 3

    def test_out_of_range_pixel(self):
        with pytest.raises(ValueError):
            ScreenConfig(64, 64, 32).tile_of_pixel(64, 0)


class TestMemoryConfig:
    def test_average_latency(self):
        assert MemoryConfig().avg_latency_cycles == 75

    def test_latency_ordering_enforced(self):
        with pytest.raises(ValueError):
            MemoryConfig(min_latency_cycles=10, max_latency_cycles=5)


class TestParameterBufferConfig:
    def test_pmds_per_block(self):
        pbuffer = ParameterBufferConfig()
        assert pbuffer.pmds_per_block == 16
        assert pbuffer.blocks_per_tile_list == 64

    def test_attribute_stride_is_block_aligned(self):
        pbuffer = ParameterBufferConfig()
        assert pbuffer.attribute_stride == 64
        assert pbuffer.attribute_bytes == 48


class TestTCORConfig:
    def test_default_split_matches_paper_64k(self):
        tcor = TCORConfig()
        assert tcor.primitive_list_cache.size_bytes == 16 * KIB
        assert tcor.attribute_buffer_bytes == 48 * KIB
        assert tcor.attribute_buffer_entries == 1024  # 10-bit ABP

    def test_for_total_size_128k(self):
        tcor = TCORConfig.for_total_size(128 * KIB)
        assert tcor.primitive_list_cache.size_bytes == 16 * KIB
        assert tcor.attribute_buffer_bytes == 112 * KIB

    def test_total_must_exceed_list_cache(self):
        with pytest.raises(ValueError):
            TCORConfig.for_total_size(16 * KIB)

    def test_primitive_buffer_entries_divisible_by_ways(self):
        tcor = TCORConfig()
        assert tcor.primitive_buffer_entries % \
            tcor.primitive_buffer_associativity == 0


class TestGPUConfig:
    def test_resize_tile_cache(self):
        gpu = GPUConfig().with_tile_cache_size(128 * KIB)
        assert gpu.tile_cache.size_bytes == 128 * KIB
        assert gpu.l2_cache.size_bytes == 1024 * KIB  # untouched
