"""Tile traversal orders and ranks."""

import pytest

from repro.config import ScreenConfig
from repro.geometry.traversal import (
    TraversalOrder,
    _interleave_bits,
    tile_traversal,
    traversal_rank,
)


@pytest.fixture
def screen() -> ScreenConfig:
    return ScreenConfig(128, 64, 32)  # 4x2 tiles


class TestMorton:
    @pytest.mark.parametrize("x,y,code", [
        (0, 0, 0), (1, 0, 1), (0, 1, 2), (1, 1, 3),
        (2, 0, 4), (3, 3, 15), (4, 0, 16),
    ])
    def test_interleave(self, x, y, code):
        assert _interleave_bits(x, y) == code


class TestTraversals:
    @pytest.mark.parametrize("order", list(TraversalOrder))
    def test_is_a_permutation(self, screen, order):
        traversal = tile_traversal(screen, order)
        assert sorted(traversal) == list(range(screen.num_tiles))

    def test_scanline(self, screen):
        assert tile_traversal(screen, TraversalOrder.SCANLINE) == \
            tuple(range(8))

    def test_serpentine_reverses_odd_rows(self, screen):
        assert tile_traversal(screen, TraversalOrder.SERPENTINE) == \
            (0, 1, 2, 3, 7, 6, 5, 4)

    def test_zorder_quad_structure(self, screen):
        traversal = tile_traversal(screen, TraversalOrder.Z_ORDER)
        # The first Z quadrant on a 4x2 grid: (0,0) (1,0) (0,1) (1,1).
        assert traversal[:4] == (0, 1, 4, 5)

    def test_zorder_on_nonsquare_paper_grid(self, paper_screen):
        traversal = tile_traversal(paper_screen, TraversalOrder.Z_ORDER)
        assert sorted(traversal) == list(range(paper_screen.num_tiles))

    @pytest.mark.parametrize("order", list(TraversalOrder))
    def test_rank_inverts_traversal(self, screen, order):
        traversal = tile_traversal(screen, order)
        rank = traversal_rank(screen, order)
        for position, tile_id in enumerate(traversal):
            assert rank[tile_id] == position

    def test_traversals_are_cached(self, screen):
        assert tile_traversal(screen, TraversalOrder.Z_ORDER) is \
            tile_traversal(screen, TraversalOrder.Z_ORDER)
