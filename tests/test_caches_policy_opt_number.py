"""The online OPT-number policy (TCOR's replacement mechanism)."""

from repro.caches.line import LineMeta
from repro.caches.policies import OptNumberPolicy
from repro.caches.set_assoc import SetAssociativeCache


def cache_with_policy(ways=4):
    policy = OptNumberPolicy()
    return SetAssociativeCache(num_sets=1, ways=ways, line_bytes=64,
                               policy=policy), policy


def access(cache, line, opt_number):
    return cache.access(line * 64, meta=LineMeta(opt_number=opt_number))


class TestVictimSelection:
    def test_evicts_greatest_opt_number(self):
        cache, _ = cache_with_policy()
        access(cache, 0, 10)
        access(cache, 1, 99)
        access(cache, 2, 5)
        access(cache, 3, 50)
        result = access(cache, 4, 7)
        assert result.evicted.tag == 1

    def test_unknown_next_use_is_farthest(self):
        cache, _ = cache_with_policy()
        access(cache, 0, 10)
        cache.access(1 * 64)        # no OPT number: treated as never-used
        access(cache, 2, 9999)
        access(cache, 3, 50)
        result = access(cache, 4, 7)
        assert result.evicted.tag == 1

    def test_hit_updates_opt_number(self):
        """Paper Section III-C.3: each read refreshes the line's OPT
        Number with the next tile that will use the primitive."""
        cache, _ = cache_with_policy(ways=2)
        access(cache, 0, 100)
        access(cache, 1, 50)
        access(cache, 0, 5)         # hit: now 0's next use is very near
        result = access(cache, 2, 7)
        assert result.evicted.tag == 1

    def test_tie_breaks_by_lru(self):
        cache, _ = cache_with_policy(ways=2)
        access(cache, 0, 40)
        access(cache, 1, 40)
        access(cache, 0, 40)        # 1 is now least recent
        result = access(cache, 2, 7)
        assert result.evicted.tag == 1


class TestWriteBypassRule:
    def test_bypass_when_all_lines_needed_sooner(self):
        policy = OptNumberPolicy()
        cache = SetAssociativeCache(1, 2, 64, policy)
        access(cache, 0, 3)
        access(cache, 1, 5)
        candidates = [line for _, line in cache.iter_lines()]
        # Incoming primitive first used at tile 9: everything resident is
        # needed sooner -> bypass.
        assert policy.should_bypass_write(candidates, 9)
        # Incoming at tile 4: line with OPT 5 is farther -> evict it.
        assert not policy.should_bypass_write(candidates, 4)

    def test_equal_opt_numbers_bypass(self):
        """Paper: equal OPT Numbers (same tile) still bypass."""
        policy = OptNumberPolicy()
        cache = SetAssociativeCache(1, 1, 64, policy)
        access(cache, 0, 5)
        candidates = [line for _, line in cache.iter_lines()]
        assert policy.should_bypass_write(candidates, 5)

    def test_empty_set_bypasses_nothing_to_compare(self):
        assert OptNumberPolicy().should_bypass_write([], 5)
