"""The Primitive List Cache and the baseline unified Tile Cache."""

import pytest

from repro.config import CacheConfig, ScreenConfig
from repro.geometry.scene import Scene
from repro.geometry.traversal import TraversalOrder, traversal_rank
from repro.pbuffer.attributes import PBAttributesMap
from repro.pbuffer.builder import build_parameter_buffer
from repro.pbuffer.layout import (
    ContiguousPBListsLayout,
    InterleavedPBListsLayout,
)
from repro.tcor.baseline_tile_cache import BaselineTileCache
from repro.tcor.primitive_list_cache import PrimitiveListCache
from repro.workloads.trace import Region
from tests.conftest import make_triangle

KIB = 1024
SCREEN = ScreenConfig(128, 64, 32)  # 4x2 tiles
RANKS = traversal_rank(SCREEN, TraversalOrder.SCANLINE)


def make_pl_cache(size=1 * KIB):
    layout = InterleavedPBListsLayout(SCREEN.num_tiles)
    return PrimitiveListCache(CacheConfig("pl", size), layout, RANKS), layout


class TestPrimitiveListCache:
    def test_first_write_allocates_without_fetch(self):
        cache, _ = make_pl_cache()
        assert cache.write_pmd(0, 0) == []

    def test_appends_to_resident_block_hit(self):
        cache, _ = make_pl_cache()
        cache.write_pmd(0, 0)
        assert cache.write_pmd(0, 1) == []
        assert cache.stats.hits == 1

    def test_rewrite_after_eviction_fetches_back(self):
        # 1 KiB = 16 blocks, 4-way, 4 sets.  Fill tile 0's set with four
        # other blocks (same tiles, later sections) to evict its block,
        # then append to it again: write-validate must fetch it back.
        cache, layout = make_pl_cache()
        cache.write_pmd(0, 0)
        set0 = cache.cache.set_of(layout.pmd_address(0, 0))
        conflicting = [
            (tile, position)
            for position in (0, 16, 32, 48, 64)
            for tile in range(SCREEN.num_tiles)
            if (tile, position) != (0, 0)
            and cache.cache.set_of(layout.pmd_address(tile, position)) == set0
        ]
        assert len(conflicting) >= 4
        for tile, position in conflicting[:4]:
            cache.write_pmd(tile, position)
        requests = cache.write_pmd(0, 1)
        fetches = [r for r in requests if not r.is_write]
        assert len(fetches) == 1  # write-validate fetch of the old block

    def test_read_miss_fetches_with_dead_tag(self):
        cache, layout = make_pl_cache()
        requests = cache.read_pmd(3, 0)
        assert len(requests) == 1
        request = requests[0]
        assert not request.is_write
        assert request.region == Region.PB_LISTS
        assert request.last_tile_rank == RANKS[3]

    def test_flush_writes_back_dirty_blocks(self):
        cache, _ = make_pl_cache()
        cache.write_pmd(0, 0)
        cache.write_pmd(1, 0)
        requests = cache.flush()
        assert len(requests) == 2
        assert all(r.is_write for r in requests)


def build_baseline(prims, cache_kib=4):
    pb = build_parameter_buffer(Scene(SCREEN, prims),
                                TraversalOrder.SCANLINE)
    layout = ContiguousPBListsLayout(SCREEN.num_tiles, pb.pbuffer)
    cache = BaselineTileCache(CacheConfig("tile", cache_kib * KIB),
                              layout, pb.attributes, pb.rank_of_tile)
    return cache, pb


class TestBaselineTileCache:
    def test_regions_classified_by_address(self):
        cache, pb = build_baseline([make_triangle(0, 4, 4, 8)])
        list_requests = cache.read_pmd(0, 0)
        attr_requests = cache.read_attributes(0)
        assert list_requests[0].region == Region.PB_LISTS
        assert all(r.region == Region.PB_ATTRIBUTES for r in attr_requests)

    def test_attribute_reads_one_block_per_attribute(self):
        cache, _ = build_baseline([make_triangle(0, 4, 4, 8,
                                                 num_attributes=4)])
        requests = cache.read_attributes(0)
        assert len(requests) == 4
        assert len({r.address for r in requests}) == 4

    def test_attribute_rereads_hit(self):
        cache, _ = build_baseline([make_triangle(0, 4, 4, 8)])
        cache.read_attributes(0)
        assert cache.read_attributes(0) == []

    def test_attr_writes_never_fetch(self):
        cache, _ = build_baseline([make_triangle(0, 4, 4, 8)])
        assert cache.write_attributes(0) == []

    def test_dead_tags_attached_to_attribute_requests(self):
        cache, pb = build_baseline([make_triangle(0, 28, 4, 10)])
        requests = cache.read_attributes(0)
        assert all(r.last_tile_rank == pb.records[0].last_use_rank
                   for r in requests)

    def test_contiguous_layout_conflicts_in_few_sets(self):
        """The paper's motivation for the new layout: tile lists map to a
        handful of sets under modulo indexing."""
        cache, pb = build_baseline(
            [make_triangle(i, 10 + (i % 8) * 30, 10 + (i // 8) * 30, 8)
             for i in range(16)])
        sets = {
            cache.cache.set_of(cache.lists_layout.pmd_address(t, 0))
            for t in range(SCREEN.num_tiles)
        }
        assert len(sets) <= 4
