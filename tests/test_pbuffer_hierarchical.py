"""Hierarchical primitive lists (related-work comparison)."""

import pytest

from repro.config import ScreenConfig
from repro.geometry.primitives import Primitive, Vertex
from repro.geometry.scene import Scene
from repro.pbuffer.hierarchical import HierarchicalLists
from tests.conftest import make_triangle

SCREEN = ScreenConfig(128, 128, 32)  # 4x4 tiles -> 2x2 groups


def big_quad_triangle(prim_id: int) -> Primitive:
    """Covers the whole upper-left 2x2 tile group (and then some)."""
    return Primitive(prim_id, Vertex(-20, -20), Vertex(150, -20),
                     Vertex(-20, 150))


class TestPromotion:
    def test_group_covering_primitive_promoted(self):
        scene = Scene(SCREEN, [big_quad_triangle(0)])
        lists = HierarchicalLists(scene)
        assert 0 in lists.coarse_lists[0]
        for tile_id in (0, 1, 4, 5):
            assert 0 not in lists.fine_lists[tile_id]

    def test_small_primitive_stays_fine(self):
        scene = Scene(SCREEN, [make_triangle(0, 4, 4, 8)])
        lists = HierarchicalLists(scene)
        assert lists.fine_lists[0] == [0]
        assert all(not lst for lst in lists.coarse_lists)

    def test_partial_group_coverage_stays_fine(self):
        # Covers tiles 0 and 1 but not 4 and 5: no promotion.
        scene = Scene(SCREEN, [make_triangle(0, 20, 4, 30)])
        lists = HierarchicalLists(scene)
        assert all(not lst for lst in lists.coarse_lists)


class TestFetchView:
    def test_every_tile_still_sees_every_overlapping_primitive(self):
        scene = Scene(SCREEN, [big_quad_triangle(0),
                               make_triangle(1, 4, 4, 8)])
        lists = HierarchicalLists(scene)
        flat = scene.tile_lists()
        for tile_id in range(SCREEN.num_tiles):
            merged = [entry.primitive_id
                      for entry in lists.entries_for_tile(tile_id)]
            assert merged == flat[tile_id]

    def test_merge_restores_program_order(self):
        scene = Scene(SCREEN, [make_triangle(0, 4, 4, 8),
                               big_quad_triangle(1),
                               make_triangle(2, 10, 10, 8)])
        lists = HierarchicalLists(scene)
        merged = [entry.primitive_id for entry in lists.entries_for_tile(0)]
        assert merged == [0, 1, 2]
        kinds = {entry.primitive_id: entry.coarse
                 for entry in lists.entries_for_tile(0)}
        assert kinds[1] is True and kinds[0] is False


class TestFootprint:
    def test_savings_on_large_primitives(self):
        scene = Scene(SCREEN, [big_quad_triangle(0)])
        lists = HierarchicalLists(scene)
        # Flat stores >= 9 PMDs (a 3x3+ tile footprint); hierarchical
        # replaces each fully covered group's 4 with 1.
        assert lists.total_pmds() < lists.flat_pmds()
        assert lists.pmd_savings() > 0.3

    def test_no_savings_on_small_primitives(self):
        scene = Scene(SCREEN, [make_triangle(i, 4 + 8 * i, 4, 6)
                               for i in range(3)])
        lists = HierarchicalLists(scene)
        assert lists.total_pmds() == lists.flat_pmds()
        assert lists.pmd_savings() == 0.0

    def test_empty_scene(self):
        lists = HierarchicalLists(Scene(SCREEN, []))
        assert lists.total_pmds() == 0
        assert lists.pmd_savings() == 0.0
