"""PMD bitfield encodings."""

import pytest

from repro.pbuffer.pmd import (
    NO_NEXT_TILE,
    BaselinePMD,
    TcorPMD,
    decode_baseline_pmd,
    decode_tcor_pmd,
)


class TestBaselinePMD:
    def test_roundtrip(self):
        pmd = BaselinePMD(primitive_id=12345, num_attributes=7)
        assert decode_baseline_pmd(pmd.encode()) == pmd

    def test_word_fits_32_bits(self):
        word = BaselinePMD((1 << 26) - 1, 15).encode()
        assert 0 <= word < (1 << 32)

    def test_field_limits(self):
        with pytest.raises(ValueError):
            BaselinePMD(1 << 26, 3).encode()
        with pytest.raises(ValueError):
            BaselinePMD(1, 16).encode()
        with pytest.raises(ValueError):
            BaselinePMD(1, 0).encode()


class TestTcorPMD:
    def test_roundtrip(self):
        pmd = TcorPMD(primitive_id=999, num_attributes=3, opt_number=1487)
        assert decode_tcor_pmd(pmd.encode()) == pmd

    def test_roundtrip_extremes(self):
        for pmd in (TcorPMD(0, 1, 0),
                    TcorPMD((1 << 16) - 1, 15, NO_NEXT_TILE)):
            assert decode_tcor_pmd(pmd.encode()) == pmd

    def test_sentinel_is_all_ones_12_bits(self):
        assert NO_NEXT_TILE == 0xFFF
        assert TcorPMD(1, 1, NO_NEXT_TILE).is_last_use
        assert not TcorPMD(1, 1, 100).is_last_use

    def test_field_limits(self):
        with pytest.raises(ValueError):
            TcorPMD(1 << 16, 3, 0).encode()
        with pytest.raises(ValueError):
            TcorPMD(1, 3, 1 << 12).encode()

    def test_distinct_words_for_distinct_pmds(self):
        words = {
            TcorPMD(p, a, o).encode()
            for p in (0, 1, 500) for a in (1, 3) for o in (0, 7, NO_NEXT_TILE)
        }
        assert len(words) == 18
