"""Streaming serve lane: animated frame sequences with affinity.

The PR-10 serving contract: a client streams one animation as
cumulative frame prefixes through ``run_sequence``; every served frame
is byte-identical to a direct :func:`repro.api.simulate` of the same
prefix; the scheduler's memoization makes each frame after the first
warm (strictly increasing ``serve.memo_hits``); and the sequence
surfaces in the ``serve.sequence_frames`` counter.
"""

from __future__ import annotations

import json

import pytest

from repro.anim import AnimationSpec, build_animated_workload
from repro.api import SimulationConfig, simulate
from repro.parallel import result_to_dict
from repro.serve import InProcessServer, schema
from repro.serve.client import sequence_name
from repro.workloads.suite import BENCHMARKS

SCALE = 0.1
FRAMES = 5
ANIM = AnimationSpec(frames=FRAMES, path="orbit", dwell=2, travel=2,
                     seed=7)
CONFIG = SimulationConfig(kind="tcor", rendering_elimination=True)


@pytest.fixture(scope="module")
def streamed():
    """One 5-frame sequence through a live server, plus the metrics
    snapshots taken before and after."""
    with InProcessServer(jobs=2, batch_window_s=0.02) as server:
        with server.client() as client:
            before = client.metrics()
            results = client.run_sequence("GTr", ANIM, scale=SCALE,
                                          config=CONFIG, timeout_s=300)
            after = client.metrics()
    return results, before, after


class TestStreamedSequence:
    def test_each_frame_matches_direct_simulate(self, streamed):
        results, _, _ = streamed
        assert len(results) == FRAMES
        for frame, served in enumerate(results):
            workload = build_animated_workload(
                BENCHMARKS["GTr"], ANIM.prefix(frame + 1), scale=SCALE)
            direct = simulate(workload, CONFIG)
            assert served.state == schema.DONE
            assert json.dumps(result_to_dict(served.result),
                              sort_keys=True) \
                == json.dumps(result_to_dict(direct.result),
                              sort_keys=True)
            assert dict(served.metrics) == dict(direct.metrics)

    def test_later_frames_skip_tiles(self, streamed):
        results, _, _ = streamed
        assert results[0].result.tiles_skipped == 0
        assert results[-1].result.tiles_skipped > 0

    def test_sequence_warmth_is_visible(self, streamed):
        """Each frame past the first re-asserts the previous prefix —
        an instant memo hit on the warm scheduler — so the counter
        grows by at least one per subsequent frame."""
        _, before, after = streamed
        memo_before = before.get("serve.memo_hits", 0)
        memo_after = after.get("serve.memo_hits", 0)
        assert memo_after - memo_before >= FRAMES - 1
        frames_before = before.get("serve.sequence_frames", 0)
        frames_after = after.get("serve.sequence_frames", 0)
        assert frames_after - frames_before >= FRAMES

    def test_memo_hits_increase_with_every_frame(self):
        """Strictly increasing warmth from frame 2 on, observed live:
        submit the prefixes one at a time and watch the counter."""
        with InProcessServer(jobs=1, batch_window_s=0.02) as server:
            with server.client() as client:
                affinity = sequence_name("SoD", SCALE, ANIM)
                memo = [client.metrics().get("serve.memo_hits", 0)]
                for frame in range(FRAMES):
                    request = schema.JobRequest(
                        alias="SoD", scale=SCALE, config=CONFIG,
                        anim=ANIM.prefix(frame + 1), sequence=affinity)
                    if frame:
                        # Re-assert the previous prefix, as the
                        # streaming client does.
                        client.run(schema.JobRequest(
                            alias="SoD", scale=SCALE, config=CONFIG,
                            anim=ANIM.prefix(frame), sequence=affinity),
                            timeout_s=300)
                    client.run(request, timeout_s=300)
                    memo.append(
                        client.metrics().get("serve.memo_hits", 0))
        for frame in range(2, FRAMES + 1):
            assert memo[frame] > memo[frame - 1], \
                f"frame {frame} added no memo hit: {memo}"

    def test_affinity_name_is_content_addressed(self):
        assert sequence_name("GTr", SCALE, ANIM) == \
            sequence_name("GTr", SCALE, ANIM)
        assert sequence_name("GTr", SCALE, ANIM) != \
            sequence_name("SoD", SCALE, ANIM)
        assert sequence_name("GTr", SCALE, ANIM) != \
            sequence_name("GTr", SCALE, ANIM.prefix(3))
