"""End-to-end service tests over the real pool and real simulator.

The serving contract (ISSUE acceptance criteria):

- a served simulation is **byte-identical** to a direct
  :func:`repro.api.simulate` call — on the pool lane, on the disk-warm
  lane, and for results that round-tripped the wire;
- N concurrent submissions of the same request coalesce onto one
  simulation (observable in ``serve.coalesced``);
- a full queue rejects with the typed 429-style error;
- SIGTERM drains in-flight work and exits 0 (subprocess test);
- the HTTP surface serves ``/submit``, ``/status``, ``/result``,
  ``/healthz`` and Prometheus-parseable ``/metrics``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import SimulationConfig, simulate
from repro.config import KIB
from repro.obs import parse_prometheus_text
from repro.parallel import DiskCache, result_to_dict, \
    simulation_code_signature
from repro.serve import InProcessServer, JobRequest, ServeClientError, \
    schema
from repro.workloads.suite import BENCHMARKS, build_workload

SCALE = 0.05
REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def direct_run(alias, config):
    workload = build_workload(BENCHMARKS[alias], scale=SCALE)
    return simulate(workload, config)


@pytest.fixture(scope="module")
def server():
    with InProcessServer(jobs=2, batch_window_s=0.02) as live:
        yield live


class TestByteIdenticalEquivalence:
    @pytest.mark.parametrize("config", [
        SimulationConfig(kind="tcor"),
        SimulationConfig(kind="baseline", tile_cache_bytes=64 * KIB),
        SimulationConfig(kind="tcor", tile_cache_bytes=64 * KIB,
                         l2_enhancements=False),
    ], ids=["tcor-default", "baseline-64k", "tcor-64k-no-l2"])
    def test_served_equals_direct_simulate(self, server, config):
        """Pool lane == direct library call, to the byte."""
        with server.client() as client:
            served = client.run(JobRequest(alias="GTr", scale=SCALE,
                                           config=config),
                                timeout_s=300)
        direct = direct_run("GTr", config)
        assert served.state == schema.DONE
        # Byte-level: the canonical JSON of both results is identical.
        assert json.dumps(result_to_dict(served.result), sort_keys=True) \
            == json.dumps(result_to_dict(direct.result), sort_keys=True)
        assert dict(served.metrics) == dict(direct.metrics)
        assert tuple(served.invariant_failures) == \
            tuple(direct.invariant_failures)

    def test_disk_warm_lane_is_byte_identical_too(self, tmp_path):
        config = SimulationConfig(kind="tcor")
        request = JobRequest(alias="CCS", scale=SCALE, config=config)
        disk = DiskCache(tmp_path, signature=simulation_code_signature())
        # First server run simulates and writes through to disk.
        with InProcessServer(jobs=1, disk=disk) as warmup:
            with warmup.client() as client:
                first = client.run(request, timeout_s=300)
        assert first.state == schema.DONE and first.lane == "pool"
        # A fresh server over the same store must serve from the disk
        # lane, bit-for-bit equal to the direct call.
        cold_disk = DiskCache(tmp_path,
                              signature=simulation_code_signature())
        with InProcessServer(jobs=1, disk=cold_disk) as warmed:
            with warmed.client() as client:
                second = client.run(request, timeout_s=60)
                disk_hits = client.metrics()["serve.disk_hits"]
        assert second.state == schema.DONE and second.lane == "disk"
        assert disk_hits == 1
        direct = direct_run("CCS", config)
        assert json.dumps(result_to_dict(second.result), sort_keys=True) \
            == json.dumps(result_to_dict(direct.result), sort_keys=True)

    def test_serve_shares_records_with_the_experiment_store(
            self, tmp_path):
        """A store warmed by the *experiment* path (put_tcor) is warm
        for the server — the two subsystems really share records."""
        config = SimulationConfig(kind="tcor")
        request = JobRequest(alias="GTr", scale=SCALE, config=config)
        direct = direct_run("GTr", config)
        disk = DiskCache(tmp_path, signature=simulation_code_signature())
        schema.store_disk(disk, request, direct.result)
        with InProcessServer(jobs=1, disk=disk) as server:
            with server.client() as client:
                served = client.run(request, timeout_s=60)
        assert served.lane == "disk"
        assert served.result == direct.result


class TestCoalescingUnderConcurrency:
    def test_duplicate_submissions_share_one_simulation(self):
        request = JobRequest(alias="GTr", scale=SCALE,
                             config=SimulationConfig(
                                 tile_cache_bytes=32 * KIB))
        n = 6
        with InProcessServer(jobs=1, batch_window_s=0.25) as server:
            with server.client() as client:
                ids = [client.submit(request)["id"] for _ in range(n)]
                assert len(set(ids)) == 1
                result = client.wait(ids[0], timeout_s=300)
                metrics = client.metrics()
        assert result.state == schema.DONE
        assert metrics["serve.coalesced"] == n - 1
        assert metrics["serve.accepted"] == 1
        assert metrics["serve.batches"] == 1


class TestBackpressure:
    def test_full_queue_rejects_with_typed_429(self):
        with InProcessServer(jobs=1, queue_limit=2,
                             batch_window_s=0.5) as server:
            with server.client() as client:
                client.submit(JobRequest(alias="GTr", scale=SCALE))
                client.submit(JobRequest(alias="CCS", scale=SCALE))
                with pytest.raises(ServeClientError) as excinfo:
                    client.submit(JobRequest(
                        alias="GTr", scale=SCALE,
                        config=SimulationConfig(kind="baseline")))
                metrics = client.metrics()
        assert excinfo.value.code == "queue_full"
        assert excinfo.value.http_status == 429
        assert metrics["serve.rejected.queue_full"] == 1

    def test_bad_request_is_a_typed_400(self, server):
        with server.client() as client:
            with pytest.raises(ServeClientError) as excinfo:
                client.call({"op": "submit",
                             "request": {"alias": "NotABenchmark"}})
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServeClientError) as excinfo:
                client.call({"op": "status", "id": "no-such-job"})
            assert excinfo.value.http_status == 404
            with pytest.raises(ServeClientError) as excinfo:
                client.call({"op": "frobnicate"})
            assert excinfo.value.code == "bad_request"


class TestHttpSurface:
    def test_http_round_trip(self, server):
        base = f"http://{server.host}:{server.port}"
        with urllib.request.urlopen(f"{base}/healthz") as resp:
            health = json.load(resp)
        assert resp_status_ok(health) and health["draining"] is False

        body = json.dumps({
            "request": schema.request_to_payload(
                JobRequest(alias="CCS", scale=SCALE)),
            "wait": True, "timeout_s": 300}).encode()
        post = urllib.request.Request(
            f"{base}/submit", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(post) as resp:
            submitted = json.load(resp)
        assert submitted["result"]["state"] == schema.DONE
        job_id = submitted["id"]

        with urllib.request.urlopen(f"{base}/status/{job_id}") as resp:
            assert json.load(resp)["status"]["state"] == schema.DONE
        with urllib.request.urlopen(f"{base}/result/{job_id}") as resp:
            payload = json.load(resp)["result"]
        served = schema.job_result_from_payload(payload)
        direct = direct_run("CCS", SimulationConfig())
        assert served.result == direct.result

    def test_http_errors_map_to_status_codes(self, server):
        base = f"http://{server.host}:{server.port}"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/status/no-such-job")
        assert excinfo.value.code == 404
        assert json.load(excinfo.value)["error"]["code"] == "not_found"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/no/such/route")
        assert excinfo.value.code == 404

    def test_metrics_exposition_parses(self, server):
        base = f"http://{server.host}:{server.port}"
        with urllib.request.urlopen(f"{base}/metrics") as resp:
            text = resp.read().decode()
        parsed = parse_prometheus_text(text)
        # The full serve surface is present from the first scrape.
        assert "serve.submitted" in parsed
        assert "serve.coalesced" in parsed
        assert "serve.rejected.queue_full" in parsed


def resp_status_ok(health):
    return health["ok"] is True


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """The full CLI contract: submit work, SIGTERM mid-flight, the
        server finishes the job, reports the drain, and exits 0."""
        port_file = tmp_path / "port"
        env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0",
             "--port-file", str(port_file), "--jobs", "1",
             "--no-disk-cache", "--drain-timeout", "300"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True)
        try:
            deadline = time.time() + 60
            while not port_file.exists() and time.time() < deadline:
                time.sleep(0.05)
            port = int(port_file.read_text())
            from repro.serve import ServeClient
            with ServeClient(port=port) as client:
                job_id = client.submit(
                    JobRequest(alias="GTr", scale=SCALE))["id"]
                assert job_id
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=300)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, output
        assert "draining" in output
        assert "drained 1 live job(s)" in output
