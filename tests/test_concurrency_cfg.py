"""Suspension-point CFG construction and path queries.

These pin the foundation of the SIM2xx family: which statements can
yield the coroutine frame to the event loop (``await``, ``async for``,
``async with``, awaits nested in comprehensions), and the
``suspension_between`` query the atomicity rule is built on — *is
there a path from the read to the write that crosses a suspension?*
"""

from __future__ import annotations

import ast
from textwrap import dedent

from repro.lint.concurrency.suspension import (SUSPEND_ASYNC_COMP,
                                               SUSPEND_ASYNC_FOR,
                                               SUSPEND_ASYNC_WITH,
                                               SUSPEND_AWAIT,
                                               SuspensionCFG,
                                               stmt_suspension_kind)


def func_of(source: str) -> ast.AsyncFunctionDef:
    tree = ast.parse(dedent(source))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    raise AssertionError("no function in fixture")


def stmt_of_line(func: ast.AST, lineno: int) -> ast.stmt:
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) \
                and getattr(node, "lineno", None) == lineno:
            return node
    raise AssertionError(f"no statement at line {lineno}")


class TestStatementKinds:
    def test_plain_statements_do_not_suspend(self):
        func = func_of("""
            async def f(self):
                a = 1
                self.x = a
                return self.x
        """)
        assert all(stmt_suspension_kind(stmt) is None
                   for stmt in func.body)

    def test_await_in_the_statement_header(self):
        func = func_of("""
            async def f(self, g):
                v = await g()
                return v
        """)
        assert stmt_suspension_kind(func.body[0]) == SUSPEND_AWAIT
        assert stmt_suspension_kind(func.body[1]) is None

    def test_async_for_and_async_with_headers(self):
        func = func_of("""
            async def f(self, source, lock):
                async for item in source:
                    use(item)
                async with lock:
                    pass
        """)
        assert stmt_suspension_kind(func.body[0]) == SUSPEND_ASYNC_FOR
        assert stmt_suspension_kind(func.body[1]) == SUSPEND_ASYNC_WITH

    def test_await_nested_in_a_comprehension_counts(self):
        func = func_of("""
            async def f(self, keys, fetch):
                values = [await fetch(key) for key in keys]
                return values
        """)
        assert stmt_suspension_kind(func.body[0]) == SUSPEND_AWAIT

    def test_async_comprehension_clause_counts(self):
        func = func_of("""
            async def f(self, source):
                values = [item async for item in source]
                return values
        """)
        assert stmt_suspension_kind(func.body[0]) == SUSPEND_ASYNC_COMP

    def test_await_inside_a_nested_def_or_lambda_does_not(self):
        func = func_of("""
            async def f(self, g):
                async def inner():
                    return await g()
                callback = lambda: g()
                return inner, callback
        """)
        assert all(stmt_suspension_kind(stmt) is None
                   for stmt in func.body)

    def test_body_awaits_belong_to_the_body_statements(self):
        # The if-statement's own evaluation (the test) never suspends;
        # the await inside the branch is that statement's suspension.
        func = func_of("""
            async def f(self, flag, g):
                if flag:
                    await g()
        """)
        assert stmt_suspension_kind(func.body[0]) is None
        assert stmt_suspension_kind(func.body[0].body[0]) == SUSPEND_AWAIT


class TestSuspensionIndex:
    def test_points_are_reported_in_source_order_with_kinds(self):
        func = func_of("""
            async def f(self, source, lock, g):
                await g()
                async with lock:
                    v = 1
                async for item in source:
                    use(item)
        """)
        scfg = SuspensionCFG(func)
        kinds = [kind for _stmt, kind in scfg.suspension_points()]
        assert kinds == [SUSPEND_AWAIT, SUSPEND_ASYNC_WITH,
                         SUSPEND_ASYNC_FOR]
        lines = [stmt.lineno for stmt, _kind in scfg.suspension_points()]
        assert lines == sorted(lines)

    def test_suspends_matches_the_kind_index(self):
        func = func_of("""
            async def f(self, g):
                a = 1
                await g()
        """)
        scfg = SuspensionCFG(func)
        assert not scfg.suspends(func.body[0])
        assert scfg.suspends(func.body[1])


class TestSuspensionBetween:
    def test_straight_line_gap_is_found(self):
        func = func_of("""
            async def f(self, g):
                v = self.x
                await g()
                self.x = v + 1
        """)
        scfg = SuspensionCFG(func)
        read = stmt_of_line(func, 3)
        write = stmt_of_line(func, 5)
        witness = scfg.suspension_between(read, write)
        assert witness is not None and witness.lineno == 4

    def test_adjacent_statements_with_no_await_are_atomic(self):
        func = func_of("""
            async def f(self, g):
                v = self.x
                self.x = v + 1
                await g()
        """)
        scfg = SuspensionCFG(func)
        read = stmt_of_line(func, 3)
        write = stmt_of_line(func, 4)
        assert scfg.suspension_between(read, write) is None

    def test_src_is_dst_never_suspends(self):
        func = func_of("""
            async def f(self, g):
                self.x = self.x + 1
                await g()
        """)
        scfg = SuspensionCFG(func)
        stmt = stmt_of_line(func, 3)
        assert scfg.suspension_between(stmt, stmt) is None

    def test_await_on_the_source_statement_counts(self):
        # ``v = await probe(self.x)`` ships the read across the loop
        # boundary before the write commits: the gap is real.
        func = func_of("""
            async def f(self, probe):
                v = await probe(self.x)
                self.x = v
        """)
        scfg = SuspensionCFG(func)
        read = stmt_of_line(func, 3)
        write = stmt_of_line(func, 4)
        witness = scfg.suspension_between(read, write)
        assert witness is not None and witness.lineno == 3

    def test_branch_with_an_await_on_one_path_is_enough(self):
        func = func_of("""
            async def f(self, flag, g):
                v = self.x
                if flag:
                    await g()
                self.x = v + 1
        """)
        scfg = SuspensionCFG(func)
        read = stmt_of_line(func, 3)
        write = stmt_of_line(func, 6)
        witness = scfg.suspension_between(read, write)
        assert witness is not None and witness.lineno == 5

    def test_loop_back_edge_routes_through_the_await(self):
        # Textually the write precedes the read, but the loop's back
        # edge makes read -> await -> (next iteration) -> write a real
        # path: the stale read can still feed the next write.
        func = func_of("""
            async def f(self, push, fetch):
                while self.more:
                    self.x = fetch()
                    v = self.x
                    await push(v)
        """)
        scfg = SuspensionCFG(func)
        write = stmt_of_line(func, 4)
        read = stmt_of_line(func, 5)
        witness = scfg.suspension_between(read, write)
        assert witness is not None and witness.lineno == 6

    def test_suspension_free_function_has_no_gaps_anywhere(self):
        func = func_of("""
            async def f(self):
                v = self.x
                if v:
                    self.x = v + 1
                return self.x
        """)
        scfg = SuspensionCFG(func)
        assert scfg.suspension_points() == []
        read = stmt_of_line(func, 3)
        write = stmt_of_line(func, 5)
        assert scfg.suspension_between(read, write) is None
