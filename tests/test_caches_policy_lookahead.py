"""Lookahead-limited OPT (the Shepherd-Cache comparison)."""

import random

import pytest

from repro.caches.fully_assoc import fully_associative_cache
from repro.caches.policies import BeladyOPT, LookaheadOPT, make_policy


def run(trace, capacity, policy):
    cache = fully_associative_cache(capacity * 64, 64, policy)
    for line in trace:
        cache.access(line * 64)
    return cache.stats.misses


@pytest.fixture(scope="module")
def trace():
    rng = random.Random(17)
    return [rng.randrange(48) for _ in range(4000)]


class TestWindowSemantics:
    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            LookaheadOPT.from_trace([1, 2, 3], window=0)

    def test_huge_window_equals_belady(self, trace):
        for capacity in (8, 16):
            belady = run(trace, capacity, BeladyOPT.from_trace(trace))
            lookahead = run(trace, capacity,
                            LookaheadOPT.from_trace(trace,
                                                    window=len(trace)))
            assert lookahead == belady

    def test_tiny_window_degrades_toward_lru(self, trace):
        capacity = 16
        lru = run(trace, capacity, make_policy("lru"))
        tiny = run(trace, capacity, LookaheadOPT.from_trace(trace, window=1))
        belady = run(trace, capacity, BeladyOPT.from_trace(trace))
        assert belady <= tiny
        assert tiny <= lru * 1.1  # close to LRU, not worse than it by much

    def test_monotone_improvement_with_window(self, trace):
        capacity = 16
        misses = [
            run(trace, capacity, LookaheadOPT.from_trace(trace, window=w))
            for w in (1, 32, 256, 4000)
        ]
        # Not strictly monotone in theory, but over a 4000-access random
        # trace the trend must hold end to end.
        assert misses[-1] < misses[0]
        assert misses[-1] <= misses[1]

    def test_partial_window_bridges_part_of_the_gap(self, trace):
        """The Shepherd-Cache observation: bounded lookahead closes only
        part of the LRU-OPT gap."""
        capacity = 16
        lru = run(trace, capacity, make_policy("lru"))
        belady = run(trace, capacity, BeladyOPT.from_trace(trace))
        mid = run(trace, capacity, LookaheadOPT.from_trace(trace, window=64))
        assert belady < mid < lru
