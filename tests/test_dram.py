"""Row-buffer-aware DRAM model."""

import pytest

from repro.dram import DRAMConfig, DRAMModel
from repro.timing import tile_fetcher_throughput


class TestConfig:
    def test_defaults_in_table1_band(self):
        config = DRAMConfig()
        assert 50 <= config.row_hit_cycles
        assert config.row_conflict_cycles <= 100

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMConfig(num_banks=0)
        with pytest.raises(ValueError):
            DRAMConfig(row_bytes=100)
        with pytest.raises(ValueError):
            DRAMConfig(row_hit_cycles=90, row_empty_cycles=60)


class TestRowBuffer:
    def test_streaming_hits_the_open_row(self):
        dram = DRAMModel()
        first = dram.access(0)
        assert first == dram.config.row_empty_cycles
        for block in range(1, dram.config.blocks_per_row):
            assert dram.access(block * 64) == dram.config.row_hit_cycles
        assert dram.stats.row_hits == dram.config.blocks_per_row - 1

    def test_same_bank_different_row_conflicts(self):
        dram = DRAMModel()
        config = dram.config
        stride = config.row_bytes * config.num_banks  # same bank, next row
        dram.access(0)
        assert dram.access(stride) == config.row_conflict_cycles
        assert dram.stats.row_conflicts == 1

    def test_different_banks_do_not_conflict(self):
        dram = DRAMModel()
        config = dram.config
        dram.access(0)
        assert dram.access(config.row_bytes) == config.row_empty_cycles

    def test_energy_accumulates(self):
        dram = DRAMModel()
        dram.access(0)
        dram.access(64, is_write=True)
        config = dram.config
        expected = (config.activate_nj + config.read_nj + config.write_nj)
        assert dram.stats.energy_nj == pytest.approx(expected)

    def test_average_latency_in_band(self):
        import random
        rng = random.Random(4)
        dram = DRAMModel()
        for _ in range(2000):
            dram.access(rng.randrange(1 << 24) * 64)
        config = dram.config
        assert config.row_hit_cycles <= dram.stats.average_latency \
            <= config.row_conflict_cycles

    def test_reset(self):
        dram = DRAMModel()
        dram.access(0)
        dram.reset()
        assert dram.stats.accesses == 0
        assert dram.access(0) == dram.config.row_empty_cycles


class TestTimingIntegration:
    def test_dram_backed_throughput_runs(self, tiny_workload):
        flat = tile_fetcher_throughput(tiny_workload, "baseline")
        dram = DRAMModel()
        banked = tile_fetcher_throughput(tiny_workload, "baseline",
                                         dram=dram)
        assert banked.primitives_delivered == flat.primitives_delivered
        assert dram.stats.accesses > 0
        # Latency band keeps the results in the same ballpark.
        assert banked.primitives_per_cycle == pytest.approx(
            flat.primitives_per_cycle, rel=0.5)
