"""Replay gate: compiled-trace kernels are bit-identical to the live
simulator.

The acceptance bar for the replay engine (the same bar PR 2 set for
hot-path tuning): for every Table II benchmark and every memory
organization the paper evaluates, replaying the compiled access trace
must reproduce the live simulator's ``SystemResult`` exactly — integer
counter equality, field by field — and its metrics registry snapshot
byte-identically (same names, same values).  The live path remains the
reference oracle; any divergence fails here before it can touch a
figure.
"""

from __future__ import annotations

import dataclasses
import io
import random

import pytest

from repro.api import SimulationConfig, simulate
from repro.config import KIB, TCORConfig
from repro.obs.registry import MetricsRegistry, Observation
from repro.replay import (
    ReplayUnsupportedError,
    compile_workload,
    load_trace,
    replay_baseline,
    replay_tcor,
    save_trace,
    try_replay,
)
from repro.tcor import system
from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS, build_workload

EQUIVALENCE_SCALE = 0.2
TILE_CACHE_BYTES = 64 * KIB


def _assert_results_equal(alias, live, replayed) -> None:
    # Field-by-field so a regression names the exact counter.
    for field in dataclasses.fields(type(live)):
        assert getattr(live, field.name) == getattr(replayed, field.name), \
            f"{alias}: {live.label}.{field.name} diverged"


@pytest.mark.parametrize("alias", BENCHMARK_ORDER)
def test_replay_bit_identical_for_every_policy(alias):
    workload = build_workload(BENCHMARKS[alias], scale=EQUIVALENCE_SCALE)
    trace = compile_workload(workload)
    tcor_config = TCORConfig.for_total_size(TILE_CACHE_BYTES)

    pairs = [
        (system.simulate_baseline(workload,
                                  tile_cache_bytes=TILE_CACHE_BYTES),
         replay_baseline(trace, tile_cache_bytes=TILE_CACHE_BYTES).result),
        (system.simulate_tcor(workload, tcor=tcor_config),
         replay_tcor(trace, tcor=tcor_config).result),
        (system.simulate_tcor(workload, tcor=tcor_config,
                              l2_enhancements=False),
         replay_tcor(trace, tcor=tcor_config,
                     l2_enhancements=False).result),
    ]
    for live, replayed in pairs:
        _assert_results_equal(alias, live, replayed)


class TestMetricNames:
    """Replay-path metrics must be byte-identical to live-path metrics
    (same ``live.*`` names, same values), so ``tcor-metrics diff``
    passes against a baseline regenerated on either path."""

    @pytest.mark.parametrize("kind", ["baseline", "tcor"])
    def test_snapshot_byte_identical(self, kind):
        config = SimulationConfig(kind=kind,
                                  tile_cache_bytes=TILE_CACHE_BYTES)
        live = simulate(build_workload(BENCHMARKS["CCS"], scale=0.1),
                        config, engine="live")
        replayed = simulate(build_workload(BENCHMARKS["CCS"], scale=0.1),
                            config, engine="replay")
        assert set(live.metrics) == set(replayed.metrics)
        assert dict(live.metrics) == dict(replayed.metrics)
        assert live.ok and replayed.ok

    def test_conservation_invariants_attach_on_replay(self):
        obs = Observation(MetricsRegistry())
        workload = build_workload(BENCHMARKS["GTr"], scale=0.1)
        result = try_replay(workload, SimulationConfig(kind="tcor"), obs)
        assert result is not None
        assert obs.registry.check_invariants() == []
        snapshot = obs.snapshot()
        assert "live.system.pb_l2_reads" in snapshot
        assert "live.l2.accesses" in snapshot


class TestRandomizedMatrix:
    """Property-style differential: a seeded random matrix of
    mini-workloads and configurations, each replayed against the live
    oracle over the full *Stats surface (the metrics snapshot flattens
    every stats object the run registers)."""

    def test_randomized_mini_matrix(self):
        rng = random.Random(0x7C08)
        aliases = rng.sample(BENCHMARK_ORDER, 4)
        for index, alias in enumerate(aliases):
            frames = 2 if index == 0 else 1
            workload = build_workload(BENCHMARKS[alias], scale=0.05,
                                      frames=frames)
            size = rng.choice([32 * KIB, 64 * KIB, 96 * KIB])
            overrides = {}
            if rng.random() < 0.5:
                overrides["write_bypass"] = False
            if rng.random() < 0.5:
                overrides["use_xor_indexing"] = False
            tcor_config = TCORConfig.for_total_size(size, **overrides)
            configs = [
                SimulationConfig(kind="baseline", tile_cache_bytes=size),
                SimulationConfig(kind="tcor", tcor=tcor_config),
                SimulationConfig(kind="tcor", tcor=tcor_config,
                                 l2_enhancements=False,
                                 interleaved_lists=rng.random() < 0.5),
                SimulationConfig(kind="tcor", tile_cache_bytes=size,
                                 include_background=False),
            ]
            for config in configs:
                live = simulate(build_workload(BENCHMARKS[alias],
                                               scale=0.05, frames=frames),
                                config, engine="live")
                replayed = simulate(workload, config, engine="replay")
                _assert_results_equal(alias, live.result, replayed.result)
                assert dict(live.metrics) == dict(replayed.metrics), \
                    f"{alias}: metrics diverged for {config}"


class TestAnimatedMatrix:
    """The PR-10 gate: multi-frame animated workloads with Rendering
    Elimination on and off must replay bit-identically to the live
    simulator — the per-tile signature arrays travel in the trace IR,
    so the replay kernels reproduce the same skip decisions, the same
    scoreboard advances and the same ``re.*`` accounting."""

    def test_animated_mini_matrix(self):
        from repro.anim import AnimationSpec, build_animated_workload

        cells = [
            ("SoD", 4, 0.0, "tcor"),
            ("SoD", 4, 0.0, "baseline"),
            ("GTr", 3, 0.5, "tcor"),
            ("CCS", 3, 1.0, "baseline"),
        ]
        for alias, frames, churn, kind in cells:
            anim = AnimationSpec(frames=frames, path="orbit", dwell=2,
                                 travel=2, churn=churn, seed=23)
            workload = build_animated_workload(BENCHMARKS[alias], anim,
                                               scale=0.05)
            for re_on in (False, True):
                config = SimulationConfig(kind=kind,
                                          rendering_elimination=re_on)
                live = simulate(workload, config, engine="live")
                replayed = simulate(workload, config, engine="replay")
                label = f"{alias} f{frames} churn={churn} {kind} " \
                        f"re={re_on}"
                _assert_results_equal(label, live.result, replayed.result)
                assert dict(live.metrics) == dict(replayed.metrics), \
                    f"{label}: metrics diverged"
                assert live.ok and replayed.ok

    def test_animated_trace_round_trips_with_signatures(self):
        from repro.anim import AnimationSpec, build_animated_workload

        anim = AnimationSpec(frames=3, path="orbit", dwell=1, travel=1,
                             seed=23)
        workload = build_animated_workload(BENCHMARKS["SoD"], anim,
                                           scale=0.05)
        trace = compile_workload(workload)
        buffer = io.BytesIO()
        save_trace(buffer, trace)
        buffer.seek(0)
        loaded = load_trace(buffer)
        for frame, frame_loaded in zip(trace.frames, loaded.frames):
            assert list(frame.tile_sig) == list(frame_loaded.tile_sig)
        _assert_results_equal(
            "SoD",
            replay_tcor(trace, rendering_elimination=True).result,
            replay_tcor(loaded, rendering_elimination=True).result)


class TestRoundTrip:
    """IR serialization: compile -> save -> load -> replay -> equal."""

    def test_npz_round_trip_replays_identically(self):
        workload = build_workload(BENCHMARKS["SoD"], scale=0.1)
        trace = compile_workload(workload)
        buffer = io.BytesIO()
        save_trace(buffer, trace)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert loaded.header.as_dict() == trace.header.as_dict()
        assert loaded.num_accesses == trace.num_accesses
        for kernel, kwargs in ((replay_baseline,
                                {"tile_cache_bytes": TILE_CACHE_BYTES}),
                               (replay_tcor,
                                {"total_tile_cache_bytes":
                                 TILE_CACHE_BYTES})):
            _assert_results_equal("SoD", kernel(trace, **kwargs).result,
                                  kernel(loaded, **kwargs).result)

    def test_version_mismatch_fails_to_load(self, monkeypatch):
        workload = build_workload(BENCHMARKS["GTr"], scale=0.05)
        buffer = io.BytesIO()
        save_trace(buffer, compile_workload(workload))
        buffer.seek(0)
        from repro.replay import ir
        monkeypatch.setattr(ir, "TRACE_IR_VERSION", 999)
        with pytest.raises(ValueError, match="version"):
            load_trace(buffer)


class TestReplayGates:
    """Replay must stand aside whenever the live path is required."""

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_REPLAY", "1")
        workload = build_workload(BENCHMARKS["GTr"], scale=0.05)
        assert try_replay(workload, SimulationConfig()) is None
        with pytest.raises(ReplayUnsupportedError):
            simulate(workload, engine="replay")

    def test_attached_tracer_forces_live(self):
        from repro.obs import Tracer

        workload = build_workload(BENCHMARKS["GTr"], scale=0.05)
        obs = Observation(MetricsRegistry(), tracer=Tracer(sinks=[]))
        assert try_replay(workload, SimulationConfig(), obs) is None

    def test_global_tracer_forces_live(self):
        from repro.obs import Tracer, activation

        workload = build_workload(BENCHMARKS["GTr"], scale=0.05)
        with activation(Tracer(sinks=[])):
            assert try_replay(workload, SimulationConfig()) is None

    def test_unsupported_geometry_falls_back(self):
        from repro.config import DEFAULT_GPU

        workload = build_workload(BENCHMARKS["GTr"], scale=0.05)
        small = dataclasses.replace(
            DEFAULT_GPU,
            l2_cache=dataclasses.replace(DEFAULT_GPU.l2_cache,
                                         line_bytes=32))
        config = SimulationConfig(kind="baseline", gpu=small)
        assert try_replay(workload, config) is None
        with pytest.raises(ReplayUnsupportedError):
            try_replay(workload, config, require=True)
