"""Scene container: binning, tile lists, statistics."""

import pytest

from repro.config import ScreenConfig
from repro.geometry.scene import DrawCommand, Scene
from tests.conftest import make_triangle


@pytest.fixture
def screen() -> ScreenConfig:
    return ScreenConfig(128, 64, 32)  # 4x2 tiles


def test_ids_must_be_dense_program_order(screen):
    with pytest.raises(ValueError):
        Scene(screen, [make_triangle(1, 0, 0)])


def test_empty_scene(screen):
    scene = Scene(screen, [])
    assert len(scene) == 0
    assert scene.average_reuse() == 0.0
    assert scene.parameter_buffer_footprint() == 0
    assert scene.draw_commands == []


def test_default_draw_command_covers_all(screen):
    scene = Scene(screen, [make_triangle(0, 0, 0), make_triangle(1, 40, 0)])
    assert scene.draw_commands == [DrawCommand(0, 2)]


def test_tile_lists_preserve_program_order(screen):
    # Both primitives land in tile 0; list order must be program order.
    scene = Scene(screen, [make_triangle(0, 10, 10, 5),
                           make_triangle(1, 2, 2, 5)])
    assert scene.tile_lists()[0] == [0, 1]


def test_coverage_and_reuse(screen):
    scene = Scene(screen, [
        make_triangle(0, 4, 4, 8),     # 1 tile
        make_triangle(1, 28, 4, 8),    # 2 tiles (straddles x boundary)
    ])
    assert scene.average_reuse() == pytest.approx(1.5)


def test_offscreen_primitives_excluded_from_reuse(screen):
    scene = Scene(screen, [make_triangle(0, 4, 4, 8),
                           make_triangle(1, 999, 999, 8)])
    assert scene.average_reuse() == 1.0  # only the visible one counts


def test_footprint_model(screen):
    # One primitive, 3 attributes, 1 tile: 3*64 attribute bytes + 1 PMD.
    scene = Scene(screen, [make_triangle(0, 4, 4, 8, num_attributes=3)])
    assert scene.parameter_buffer_footprint() == 3 * 64 + 4


def test_max_primitives_in_a_tile(screen):
    prims = [make_triangle(i, 4, 4, 5) for i in range(7)]
    scene = Scene(screen, prims)
    assert scene.max_primitives_in_a_tile() == 7


def test_coverage_is_cached(screen):
    scene = Scene(screen, [make_triangle(0, 4, 4, 8)])
    assert scene.coverage() is scene.coverage()


def test_malformed_draw_command():
    with pytest.raises(ValueError):
        DrawCommand(0, 0)
    with pytest.raises(ValueError):
        DrawCommand(-1, 5)
