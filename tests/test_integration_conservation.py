"""Traffic conservation laws of the TCOR system.

These invariants hold for *any* workload and pin down the accounting:

1. Every binned primitive's attribute blocks reach the L2 as writes
   exactly once (bypass or writeback — never zero, never twice).
2. PB-Lists blocks are read from the L2 at most once per block per
   consumer pass plus write-validate refetches — bounded by PMD counts.
3. The L2's PB region accounting equals the request-side counters.

The run threads an :class:`repro.obs.Observation` through the
simulation, so laws that used to be hand-rolled over result fields are
now registry-level assertions: the structural per-source rules
(``accesses == reads + writes`` ...) and the cross-structure PB
accounting rule attach to the registry itself, and the instrumented
request tap is checked against the registry snapshot.
"""

import pytest

from repro.obs import Observation
from repro.tcor.system import simulate_tcor
from repro.tiling.events import AttributeWrite
from repro.workloads.suite import BENCHMARKS, build_workload
from repro.workloads.trace import Region

import repro.tcor.system as system_module
from repro.caches.line import LineMeta


@pytest.fixture(scope="module", params=["GTr", "DDS"])
def traffic(request):
    """Run TCOR with an instrumented request tap."""
    workload = build_workload(BENCHMARKS[request.param], scale=0.06)
    taps = {"attr_writes": 0, "attr_reads": 0,
            "list_writes": 0, "list_reads": 0}
    original = system_module._send

    def tapped(shared, requests, counters):
        for request_ in requests:
            if request_.region == Region.PB_ATTRIBUTES:
                taps["attr_writes" if request_.is_write
                     else "attr_reads"] += 1
            elif request_.region == Region.PB_LISTS:
                taps["list_writes" if request_.is_write
                     else "list_reads"] += 1
        original(shared, requests, counters)

    system_module._send = tapped
    obs = Observation()
    try:
        result = simulate_tcor(workload, obs=obs)
    finally:
        system_module._send = original
    return workload, result, taps, obs


def test_every_attribute_block_written_to_l2_exactly_once(traffic):
    workload, _result, taps, _obs = traffic
    expected = sum(
        event.num_attributes
        for event in workload.traces[0].build_events
        if isinstance(event, AttributeWrite)
    )
    assert taps["attr_writes"] == expected


def test_attr_reads_bounded_by_misses(traffic):
    _workload, result, taps, _obs = traffic
    misses = result.attr_reads - result.attr_read_hits
    if misses == 0:
        # Everything fit: no fill reads at all.
        assert taps["attr_reads"] == 0
    else:
        # A read miss fetches each of the primitive's attributes once.
        attrs_per_read = taps["attr_reads"] / misses
        assert 1.0 <= attrs_per_read <= 15.0


def test_request_taps_match_result_counters(traffic):
    _workload, result, taps, _obs = traffic
    assert result.pb_l2_writes == taps["attr_writes"] + taps["list_writes"]
    assert result.pb_l2_reads == taps["attr_reads"] + taps["list_reads"]


def test_list_reads_bounded_by_blocks_and_refetches(traffic):
    workload, _result, taps, _obs = traffic
    pb = workload.traces[0].pb
    occupied_blocks = sum(
        (len(tile_list) + pb.pbuffer.pmds_per_block - 1)
        // pb.pbuffer.pmds_per_block
        for tile_list in pb.tile_lists
    )
    # Blocks that never leave the Primitive List Cache are never fetched
    # (zero is legal); the ceiling is one write-validate refetch per PMD
    # append plus one Tile Fetcher fill per block.
    assert 0 <= taps["list_reads"] <= pb.total_pmds() + occupied_blocks


def test_registry_invariants_hold(traffic):
    """Structural rules + the PB accounting sum rule, over live stats."""
    *_, obs = traffic
    assert obs.registry.check_invariants() == []


def test_registry_snapshot_matches_request_taps(traffic):
    """The tap (ground truth at the request boundary) agrees with the
    registry's explicit counters AND with the L2's by-region split —
    three independent accountings of the same traffic."""
    _workload, result, taps, obs = traffic
    snap = obs.snapshot()
    tap_reads = taps["attr_reads"] + taps["list_reads"]
    tap_writes = taps["attr_writes"] + taps["list_writes"]
    assert snap["live.system.pb_l2_reads"] == tap_reads == result.pb_l2_reads
    assert snap["live.system.pb_l2_writes"] == tap_writes \
        == result.pb_l2_writes
    by_region = (snap["live.l2.by_region.pb_lists.reads"]
                 + snap["live.l2.by_region.pb_lists.writes"]
                 + snap["live.l2.by_region.pb_attributes.reads"]
                 + snap["live.l2.by_region.pb_attributes.writes"])
    assert by_region == tap_reads + tap_writes


def test_registry_result_counters_agree(traffic):
    """SystemResult fields are derived from the same live stats the
    registry reads — the two views must agree exactly."""
    _workload, result, taps, obs = traffic
    snap = obs.snapshot()
    assert snap["live.attribute_cache.reads"] == result.attr_reads
    assert snap["live.attribute_cache.read_hits"] == result.attr_read_hits
    assert snap["live.dram.accesses"] == result.mm_accesses
