"""The Table II benchmark suite and workload construction."""

import pytest

from repro.workloads.suite import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    BenchmarkSpec,
    build_workload,
)

MIB = 1024 * 1024


class TestSpecs:
    def test_all_ten_games_present(self):
        assert len(BENCHMARKS) == 10
        assert BENCHMARK_ORDER == ("CCS", "SoD", "TRu", "SWa", "CRa",
                                   "RoK", "DDS", "Snp", "Mze", "GTr")

    def test_published_table2_values(self):
        assert BENCHMARKS["CCS"].pb_footprint_mib == 0.17
        assert BENCHMARKS["CCS"].avg_reuse == 5.9
        assert BENCHMARKS["DDS"].pb_footprint_mib == 1.81
        assert BENCHMARKS["DDS"].avg_reuse == 1.4
        assert BENCHMARKS["Snp"].avg_reuse == 1.47

    def test_published_text_values(self):
        # Section IV-B quotes these two texture footprints and the two
        # shader lengths explicitly.
        assert BENCHMARKS["RoK"].texture_mib == 6.8
        assert BENCHMARKS["SWa"].texture_mib == 0.4
        assert BENCHMARKS["CCS"].shader_insts_per_pixel == 4
        assert BENCHMARKS["DDS"].shader_insts_per_pixel == 20

    def test_primitive_count_follows_footprint_model(self):
        spec = BENCHMARKS["CCS"]
        expected = round(0.17 * MIB / (3.0 * 64 + 5.9 * 4))
        assert spec.num_primitives() == expected

    def test_dds_is_the_largest(self):
        counts = {alias: spec.num_primitives()
                  for alias, spec in BENCHMARKS.items()}
        assert max(counts, key=counts.get) == "DDS"


class TestBuildWorkload:
    def test_scale_shrinks_geometry(self):
        small = build_workload(BENCHMARKS["GTr"], scale=0.1)
        smaller = build_workload(BENCHMARKS["GTr"], scale=0.05)
        assert smaller.num_primitives < small.num_primitives

    def test_measured_statistics_close_to_published(self):
        workload = build_workload(BENCHMARKS["SoD"], scale=0.5)
        assert workload.measured_reuse() == pytest.approx(6.9, rel=0.2)
        assert workload.measured_footprint_mib() / 0.5 == \
            pytest.approx(0.14, rel=0.25)

    def test_multiple_frames(self):
        workload = build_workload(BENCHMARKS["GTr"], scale=0.05, frames=2)
        assert len(workload.traces) == 2
        assert workload.traces[0].num_binned_primitives > 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_workload(BENCHMARKS["CCS"], scale=0)
        with pytest.raises(ValueError):
            build_workload(BENCHMARKS["CCS"], frames=0)


class TestCustomSpec:
    def test_roundtrip_through_builder(self):
        spec = BenchmarkSpec("XX", "Custom", 1, "Test", False,
                             pb_footprint_mib=0.05, avg_reuse=2.0,
                             texture_mib=0.5, shader_insts_per_pixel=6,
                             seed=42)
        workload = build_workload(spec, scale=1.0)
        assert workload.spec.alias == "XX"
        assert workload.num_primitives == spec.num_primitives()
