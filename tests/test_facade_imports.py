"""Facade-import regression tests.

The PEP 562 deprecation shim at ``repro.experiments.runner`` is gone
(two PRs past its introduction): the module must stay *absent*, the
driver must carry the whole supported surface, and the public facades
(``repro.api``, ``repro.serve``) must keep exporting the names
downstream code imports.
"""

import importlib

import pytest


class TestRunnerShimRetired:
    def test_runner_module_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.experiments.runner")

    def test_driver_carries_the_moved_surface(self):
        from repro.experiments import driver

        for name in ("main", "run_experiments", "resolve_names",
                     "export_table_metrics"):
            assert callable(getattr(driver, name))


class TestApiFacade:
    def test_public_names(self):
        import repro.api as api

        for name in api.__all__:
            assert hasattr(api, name), name
        assert {"simulate", "run_experiment", "simulation_cache",
                "connect"} <= set(api.__all__)

    def test_connect_rejects_bad_endpoints_typed(self):
        from repro.serve import ServeClientError

        import repro.api as api

        with pytest.raises(ServeClientError) as info:
            api.connect([])
        assert info.value.code == "bad_endpoint"


class TestServeFacade:
    def test_public_names(self):
        import repro.serve as serve

        for name in serve.__all__:
            assert hasattr(serve, name), name
        assert {"Router", "HashRing", "TieredResultCache", "connect",
                "ServeHandle", "SCHEMA_VERSION"} <= set(serve.__all__)

    def test_handle_is_a_simulation_provider(self):
        from repro.experiments.common import SimulationProvider
        from repro.serve.handle import ServeHandle

        assert issubclass(ServeHandle, SimulationProvider)
