"""The router's tiered result cache (memory LRU over the disk store)."""

from __future__ import annotations

import json

import pytest

from repro.api import SimulationConfig
from repro.parallel import DiskCache, ResultTier
from repro.serve.schema import JobRequest
from repro.serve.tiers import (
    DiskRecordTier,
    MemoryTier,
    TieredResultCache,
    record_for_result,
)
from repro.tcor.system import SystemResult


def fake_record(tag: str, pad: int = 0) -> dict:
    record = record_for_result(
        SystemResult(label=f"run-{tag}", alias="GTr"))
    if pad:
        record["metrics"] = {"pad": "x" * pad}
    return record


def cost_of(record: dict) -> int:
    return len(json.dumps(record, sort_keys=True, default=str))


class TestMemoryTier:
    def test_put_get_round_trip_and_counters(self):
        tier = MemoryTier(1 << 20)
        record = fake_record("a")
        assert tier.get("k") is None
        tier.put("k", record)
        assert tier.get("k") is record
        assert (tier.hits, tier.misses) == (1, 1)
        assert len(tier) == 1 and tier.size_bytes == cost_of(record)

    def test_byte_budget_evicts_cold_end(self):
        one = fake_record("a")
        tier = MemoryTier(3 * cost_of(one) + 2)
        for tag in ("a", "b", "c"):
            tier.put(tag, fake_record(tag))
        tier.put("d", fake_record("d"))  # over budget: "a" goes
        assert tier.get("a") is None
        assert tier.get("d") is not None
        assert tier.evictions == 1
        assert tier.size_bytes <= tier.capacity_bytes

    def test_get_refreshes_recency(self):
        one = fake_record("a")
        tier = MemoryTier(3 * cost_of(one) + 2)
        for tag in ("a", "b", "c"):
            tier.put(tag, fake_record(tag))
        tier.get("a")                    # "b" is now the coldest
        tier.put("d", fake_record("d"))
        assert tier.get("b") is None
        assert tier.get("a") is not None

    def test_oversized_record_is_refused(self):
        tier = MemoryTier(64)
        tier.put("big", fake_record("big", pad=4096))
        assert len(tier) == 0 and tier.size_bytes == 0

    def test_replacing_a_key_does_not_leak_bytes(self):
        tier = MemoryTier(1 << 20)
        tier.put("k", fake_record("a"))
        tier.put("k", fake_record("a", pad=100))
        assert len(tier) == 1
        assert tier.size_bytes == cost_of(fake_record("a", pad=100))

    def test_resize_shrinks_to_fit(self):
        tier = MemoryTier(1 << 20)
        for tag in ("a", "b", "c", "d"):
            tier.put(tag, fake_record(tag))
        tier.resize(cost_of(fake_record("a")) + 1)
        assert len(tier) == 1
        assert tier.get("d") is not None  # hottest survivor

    def test_is_a_result_tier(self):
        assert isinstance(MemoryTier(), ResultTier)
        assert MemoryTier().stats_line().startswith("memory tier:")


@pytest.fixture
def disk(tmp_path):
    return DiskCache(tmp_path, signature="test-sig")


class TestDiskRecordTier:
    def test_round_trip_through_the_store(self, disk):
        tier = DiskRecordTier(disk)
        request = JobRequest(alias="GTr", scale=0.05)
        record = fake_record("a")
        record["metrics"] = {}  # disk records carry no metrics
        assert tier.get("key", request) is None
        tier.put("key", record, request)
        loaded = tier.get("key", request)
        assert loaded is not None
        assert loaded["result"] == record["result"]
        assert (tier.hits, tier.misses) == (1, 1)

    def test_non_mappable_requests_bypass_the_store(self, disk):
        tier = DiskRecordTier(disk)
        request = JobRequest(alias="GTr", scale=0.05,
                             config=SimulationConfig(
                                 include_background=False))
        tier.put("key", fake_record("a"), request)
        assert tier.get("key", request) is None
        assert tier.hits == 0

    def test_missing_context_is_a_miss(self, disk):
        tier = DiskRecordTier(disk)
        assert tier.get("key", None) is None


class TestTieredResultCache:
    def test_signature_comes_from_the_disk_store(self, disk):
        assert TieredResultCache().signature == ""
        assert TieredResultCache(disk=disk).signature == "test-sig"

    def test_disk_hit_promotes_into_memory(self, disk):
        tiered = TieredResultCache(memory=MemoryTier(1 << 20), disk=disk)
        request = JobRequest(alias="GTr", scale=0.05)
        record = fake_record("a")
        record["metrics"] = {}
        tiered.disk_tier.put("key", record, request)
        assert tiered.lookup_memory("key") is None
        hit = tiered.probe_disk("key", request)
        assert hit is not None
        assert tiered.lookup_memory("key") == hit  # promoted
        snapshot = tiered.snapshot()
        assert snapshot["disk.hits"] == 1
        assert snapshot["memory.entries"] == 1

    def test_admit_is_memory_only(self, disk):
        """Disk population stays the backends' write-through; the
        router's admit must never double the file traffic."""
        tiered = TieredResultCache(memory=MemoryTier(1 << 20), disk=disk)
        request = JobRequest(alias="GTr", scale=0.05)
        tiered.admit("key", fake_record("a"))
        assert tiered.lookup_memory("key") is not None
        assert tiered.disk_tier.get("key", request) is None

    def test_memoryless_cache_never_admits(self, disk):
        tiered = TieredResultCache(disk=disk)
        tiered.admit("key", fake_record("a"))
        assert tiered.lookup_memory("key") is None
        assert "memory.hits" not in tiered.snapshot()
