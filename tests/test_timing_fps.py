"""FPS model (the abstract's 3.7% claim)."""

import pytest

from repro.tcor.system import simulate_baseline, simulate_tcor
from repro.timing.fps import estimate_frame_time, fps_gain


@pytest.fixture(scope="module")
def pair(tiny_workload):
    return (simulate_baseline(tiny_workload), simulate_tcor(tiny_workload),
            tiny_workload)


def test_tcor_frame_is_faster(pair):
    baseline, tcor, workload = pair
    base = estimate_frame_time(baseline, workload)
    fast = estimate_frame_time(tcor, workload)
    assert fast.total_cycles < base.total_cycles


def test_compute_cycles_identical(pair):
    baseline, tcor, workload = pair
    assert estimate_frame_time(baseline, workload).compute_cycles == \
        estimate_frame_time(tcor, workload).compute_cycles


def test_fps_gain_small_positive_fraction(pair):
    baseline, tcor, workload = pair
    gain = fps_gain(baseline, tcor, workload)
    assert 0.0 < gain < 0.5  # single-digit percent territory

def test_fps_inverse_of_frame_time(pair):
    baseline, _tcor, workload = pair
    estimate = estimate_frame_time(baseline, workload)
    assert estimate.fps() == pytest.approx(
        600e6 / estimate.total_cycles)
