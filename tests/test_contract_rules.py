"""The five SIM3xx contract rules, on fixture projects and the real tree.

Fixtures follow the ``{path: source}`` convention of the other
semantic-rule tests; paths use the real module locations
(``src/repro/serve/schema.py`` etc.) because the contract spec keys on
module names.  The final classes seed divergences into a copy of the
*actual* repository sources, proving the rules bind to the real
contract surfaces and that the live tree is clean.
"""

from __future__ import annotations

import pathlib
import re
from textwrap import dedent

from repro.lint.semantic.engine import SemanticCache, semantic_pass


def run(sources: dict[str, str], select: set[str] | None = None):
    dedented = {path: dedent(source) for path, source in sources.items()}
    return semantic_pass(dedented, select=select)


def rules_of(result) -> list[str]:
    return [violation.rule for violation in result.violations]


STATS = """
    from dataclasses import dataclass, field

    @dataclass
    class CacheStats:
        reads: int = 0
        writes: int = 0
        writebacks: int = 0
        bypasses: int = 0
        by_region: dict = field(default_factory=dict)

        def record(self, is_write: bool, region: str) -> None:
            if is_write:
                self.writes += 1
            else:
                self.reads += 1
            self.by_region.setdefault(region, 0)

        def note_bypass(self) -> None:
            self.bypasses += 1
"""

TILE = """
    from repro.caches.stats import CacheStats

    class BaselineTileCache:
        def __init__(self) -> None:
            self.stats = CacheStats()

        def access(self, is_write: bool, region: str) -> None:
            self.stats.record(is_write, region)
            self.stats.note_bypass()
"""


def tile_project(kernels: str) -> dict[str, str]:
    return {"src/repro/caches/stats.py": STATS,
            "src/repro/tcor/baseline_tile_cache.py": TILE,
            "src/repro/replay/kernels.py": kernels}


class TestStatsFootprintParity:
    def test_matching_footprints_are_clean(self):
        # `bypasses` is written live but spec-waived for the tile model.
        result = run(tile_project("""
            from repro.caches.stats import CacheStats

            def replay_baseline(trace):
                return CacheStats(reads=1, writes=2, by_region={})
        """), select={"SIM301"})
        assert rules_of(result) == []

    def test_live_only_counter_is_flagged_at_the_ctor(self):
        result = run(tile_project("""
            from repro.caches.stats import CacheStats

            def replay_baseline(trace):
                return CacheStats(reads=1, by_region={})
        """), select={"SIM301"})
        assert rules_of(result) == ["SIM301"]
        message = result.violations[0].message
        assert "model `tile`" in message
        assert "CacheStats.writes" in message
        assert "structural zero" in message

    def test_replay_only_counter_is_flagged(self):
        # `writebacks` is a declared field no live mutation feeds.
        result = run(tile_project("""
            from repro.caches.stats import CacheStats

            def replay_baseline(trace):
                return CacheStats(reads=1, writes=2, writebacks=3,
                                  by_region={})
        """), select={"SIM301"})
        assert rules_of(result) == ["SIM301"]
        assert "invents history" in result.violations[0].message

    def test_unknown_kwarg_and_positional_args_are_flagged(self):
        result = run(tile_project("""
            from repro.caches.stats import CacheStats

            def replay_baseline(trace):
                return CacheStats(1, writes=2, bogus=3, by_region={},
                                  reads=1)
        """), select={"SIM301"})
        messages = sorted(v.message for v in result.violations)
        assert len(messages) == 2
        assert "positional" in messages[0]
        assert "not a declared field" in messages[1]

    def test_unmapped_ctor_site_is_flagged(self):
        result = run(tile_project("""
            from repro.caches.stats import CacheStats

            def replay_baseline(trace):
                return CacheStats(reads=1, writes=2, by_region={})

            def scratch(trace):
                return CacheStats(reads=0)
        """), select={"SIM301"})
        assert rules_of(result) == ["SIM301"]
        assert "REPLAY_SITES" in result.violations[0].message

    def test_vanished_ctor_is_a_finding(self):
        result = run(tile_project("""
            def replay_baseline(trace):
                return None
        """), select={"SIM301"})
        assert rules_of(result) == ["SIM301"]
        assert "no longer reconstructs" in result.violations[0].message

    def test_partial_scan_without_replay_module_is_quiet(self):
        result = run({"src/repro/caches/stats.py": STATS,
                      "src/repro/tcor/baseline_tile_cache.py": TILE},
                     select={"SIM301"})
        assert rules_of(result) == []


METRICS = """
    COUNTERS = ("admitted", "rejected")
    GAUGES = ("depth",)
    CLUSTER_COUNTERS = ("forwarded",)
    CLUSTER_GAUGES = ("backends",)

    class MetricsRegistry:
        def count(self, name: str, value: int = 1) -> None:
            pass

    class ServeMetrics:
        def __init__(self) -> None:
            self.registry = MetricsRegistry()

        def count(self, name: str, value: int = 1) -> None:
            pass

    class ClusterMetrics(ServeMetrics):
        pass
"""


class TestMetricNames:
    def run_with_scheduler(self, body: str):
        return run({
            "src/repro/serve/metrics.py": METRICS,
            "src/repro/serve/scheduler.py": """
                from repro.serve.metrics import (ClusterMetrics,
                                                 MetricsRegistry,
                                                 ServeMetrics)

                class Scheduler:
                    def __init__(self) -> None:
                        self.metrics = ServeMetrics()
                        self.cluster = ClusterMetrics()

                    def tick(self, registry: MetricsRegistry) -> None:
            """ + body}, select={"SIM302"})

    def test_registered_relative_and_absolute_names_are_clean(self):
        result = self.run_with_scheduler("""
                        self.metrics.count("admitted")
                        self.metrics.count("batch_size")
                        self.cluster.count("forwarded")
                        registry.count("live.tile_cache.reads")
                        registry.count("serve.rejected")
        """)
        assert rules_of(result) == []

    def test_typo_in_relative_name_is_flagged(self):
        result = self.run_with_scheduler("""
                        self.metrics.count("admited")
        """)
        assert rules_of(result) == ["SIM302"]
        assert "not a declared serve.*" in result.violations[0].message

    def test_subclass_namespace_does_not_inherit_names(self):
        # ClusterMetrics declares its own tables; the parent's counter
        # names are not valid relative names for it.
        result = self.run_with_scheduler("""
                        self.cluster.count("admitted")
        """)
        assert rules_of(result) == ["SIM302"]
        assert "serve.cluster.*" in result.violations[0].message

    def test_registry_names_must_be_namespaced_and_registered(self):
        result = self.run_with_scheduler("""
                        registry.count("oops.thing")
                        registry.count("serve.unknown")
        """)
        messages = sorted(v.message for v in result.violations)
        assert len(messages) == 2
        assert "not pre-registered" in messages[0]
        assert "outside the live./sim./serve./anim./re. namespaces" \
            in messages[1]

    def test_unresolved_receiver_with_plain_string_is_quiet(self):
        # str.count and friends must not be mistaken for metrics.
        result = run({
            "src/repro/serve/metrics.py": METRICS,
            "src/repro/serve/text.py": """
                def tally(lines):
                    return sum(line.count("x") for line in lines)
            """}, select={"SIM302"})
        assert rules_of(result) == []


SCHEMA = """
    SCHEMA_VERSION = 2
    VERSION_COMPAT_SPAN = 1
    WIRE_FIELDS = {
        1: ("op", "id", "ok"),
        2: ("shard",),
        9: ("relic",),
    }

    def versions_compatible(theirs: int) -> bool:
        return theirs == SCHEMA_VERSION
"""


class TestWireSchema:
    def test_declared_fields_and_handled_ops_are_clean(self):
        result = run({
            "src/repro/serve/schema.py": SCHEMA,
            "src/repro/serve/server.py": """
                def handle(payload):
                    op = payload.get("op")
                    if op == "submit":
                        return {"op": "submit", "ok": True}
                    if op == "status":
                        return payload["id"]
                    return None
            """,
            "src/repro/serve/client.py": """
                def send():
                    return {"op": "status", "id": 7}
            """}, select={"SIM303"})
        assert rules_of(result) == []

    def test_undeclared_and_out_of_span_fields_are_flagged(self):
        result = run({
            "src/repro/serve/schema.py": SCHEMA,
            "src/repro/serve/server.py": """
                def handle(payload):
                    if payload.get("op") == "submit":
                        return payload.get("relic")
                    payload["extra"] = 1
                    return None
            """}, select={"SIM303"})
        messages = sorted(v.message for v in result.violations)
        assert len(messages) == 2
        assert "reads wire field `relic`" in messages[0]
        assert "compat span (v1,v2)" in messages[0]
        assert "writes wire field `extra`" in messages[1]

    def test_op_without_server_handler_is_flagged(self):
        result = run({
            "src/repro/serve/schema.py": SCHEMA,
            "src/repro/serve/server.py": """
                def handle(payload):
                    if payload.get("op") == "submit":
                        return True
                    return None
            """,
            "src/repro/serve/client.py": """
                def send():
                    return {"op": "purge", "id": 7}
            """}, select={"SIM303"})
        assert rules_of(result) == ["SIM303"]
        assert "op `purge`" in result.violations[0].message
        assert "unknown_op" in result.violations[0].message

    def test_unrelated_receivers_are_not_wire_payloads(self):
        result = run({
            "src/repro/serve/schema.py": SCHEMA,
            "src/repro/serve/server.py": """
                def lookup(table):
                    return table.get("whatever")
            """}, select={"SIM303"})
        assert rules_of(result) == []


class TestEnvVarDiscipline:
    def test_raw_literal_names_the_declared_constant(self):
        result = run({
            "src/repro/envvars.py": 'NO_REPLAY = "REPRO_NO_REPLAY"\n',
            "src/repro/parallel/store.py": """
                import os

                def cache_dir():
                    return os.environ.get("REPRO_NO_REPLAY")
            """}, select={"SIM304"})
        assert rules_of(result) == ["SIM304"]
        assert "repro.envvars.NO_REPLAY" in result.violations[0].message

    def test_undeclared_literal_points_at_the_table(self):
        result = run({
            "src/repro/envvars.py": 'NO_REPLAY = "REPRO_NO_REPLAY"\n',
            "src/repro/parallel/store.py": """
                import os

                def knob():
                    return os.environ.get("REPRO_NEW_KNOB")
            """}, select={"SIM304"})
        assert rules_of(result) == ["SIM304"]
        assert "declared in repro.envvars" in result.violations[0].message

    def test_reading_through_the_constant_is_clean(self):
        result = run({
            "src/repro/envvars.py": 'NO_REPLAY = "REPRO_NO_REPLAY"\n',
            "src/repro/parallel/store.py": """
                import os

                from repro import envvars

                def flag():
                    return os.environ.get(envvars.NO_REPLAY)
            """}, select={"SIM304"})
        assert rules_of(result) == []


class TestVersionDiscipline:
    def test_helper_comparison_is_clean(self):
        result = run({"src/repro/serve/schema.py": SCHEMA},
                     select={"SIM305"})
        assert rules_of(result) == []

    def test_constant_compared_outside_helper_is_flagged(self):
        result = run({
            "src/repro/serve/schema.py": SCHEMA,
            "src/repro/serve/client.py": """
                from repro.serve import schema

                def check(response):
                    return response.get("v") == schema.SCHEMA_VERSION
            """}, select={"SIM305"})
        assert rules_of(result) == ["SIM305"]
        assert "versions_compatible()" in result.violations[0].message

    def test_version_field_against_raw_literal_is_flagged(self):
        result = run({
            "src/repro/serve/client.py": """
                def check(response):
                    return response.get("v") == 2
            """}, select={"SIM305"})
        assert rules_of(result) == ["SIM305"]
        assert "raw literal 2" in result.violations[0].message

    def test_version_keys_outside_versioned_modules_are_quiet(self):
        # `v` means "vertex" in workload land, not a protocol version.
        result = run({
            "src/repro/workloads/mesh.py": """
                def is_origin(vertex):
                    return vertex["v"] == 2
            """}, select={"SIM305"})
        assert rules_of(result) == []

    def test_cache_cookie_constants_are_exempt(self):
        # Key-vs-constant comparisons of unspec'd *_VERSION cookies
        # carry no compat semantics and stay legal.
        result = run({
            "src/repro/parallel/store.py": """
                CACHE_VERSION = 4

                def load(payload):
                    return payload.get("version") == CACHE_VERSION
            """}, select={"SIM305"})
        assert rules_of(result) == []


def real_tree_sources() -> dict[str, str]:
    """The actual repo modules the contract rules bind to."""
    root = pathlib.Path(__file__).resolve().parent.parent
    sources = {}
    for sub in ("src/repro/caches", "src/repro/tcor", "src/repro/replay",
                "src/repro/serve", "src/repro/obs"):
        for path in sorted((root / sub).rglob("*.py")):
            sources[str(path.relative_to(root))] = path.read_text()
    sources["src/repro/envvars.py"] = \
        (root / "src/repro/envvars.py").read_text()
    return sources


class TestRealTreeContracts:
    def test_seeded_counter_divergence_is_exactly_one_finding(self):
        # The acceptance check: delete one counter kwarg from the real
        # kernels and SIM301 reports exactly that model and field.
        sources = real_tree_sources()
        kernels = "src/repro/replay/kernels.py"
        mutated, hits = re.subn(r"\s*dead_evictions=[^,\n]+,", "",
                                sources[kernels], count=1)
        assert hits == 1
        sources[kernels] = mutated
        result = semantic_pass(sources, select={"SIM301"})
        assert rules_of(result) == ["SIM301"]
        message = result.violations[0].message
        assert "model `l2`" in message
        assert "CacheStats.dead_evictions" in message

    def test_real_tree_is_contract_clean(self):
        result = semantic_pass(
            real_tree_sources(),
            select={"SIM301", "SIM302", "SIM303", "SIM304", "SIM305"})
        assert rules_of(result) == []


class TestContractFactsCaching:
    def test_warm_rerun_serves_facts_and_recomputes_program_rules(
            self, tmp_path):
        sources = {path: dedent(src) for path, src in tile_project("""
            from repro.caches.stats import CacheStats

            def replay_baseline(trace):
                return CacheStats(reads=1, by_region={})
        """).items()}
        cache_file = tmp_path / "semantic-cache.json"
        cold = semantic_pass(
            sources, cache=SemanticCache(cache_file, "sig"),
            select={"SIM301"})
        warm = semantic_pass(
            sources, cache=SemanticCache(cache_file, "sig"),
            select={"SIM301"})
        assert cold.facts_computed == len(sources)
        assert warm.facts_from_cache == len(sources)
        assert warm.facts_computed == 0
        # Program-scope contract findings are recomputed each pass from
        # the cached facts — and byte-identical.
        assert [v.message for v in warm.violations] == \
            [v.message for v in cold.violations]
        assert rules_of(warm) == ["SIM301"]
