"""CFG construction and reaching-definitions dataflow.

These pin the semantic layer's foundations: block structure for every
compound-statement shape the simulator uses, conservative exception
edges, and the flow-sensitive origin resolution the SIM1xx rules
consume.
"""

from __future__ import annotations

import ast
from textwrap import dedent

from repro.lint.semantic.cfg import build_cfg
from repro.lint.semantic.dataflow import (FunctionDataflow,
                                          definitions_of_stmt)


def func_of(source: str) -> ast.FunctionDef:
    tree = ast.parse(dedent(source))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    raise AssertionError("no function in fixture")


def stmt_of_line(func: ast.FunctionDef, lineno: int) -> ast.stmt:
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and getattr(node, "lineno", None) \
                == lineno:
            return node
    raise AssertionError(f"no statement at line {lineno}")


class TestCfgShapes:
    def test_straight_line_is_one_reachable_body_block(self):
        cfg = build_cfg(func_of("""
            def f(x):
                a = x
                b = a + 1
                return b
        """))
        body_blocks = {bid for bid in cfg.reachable()
                       if cfg.blocks[bid].stmts}
        assert len(body_blocks) == 1

    def test_if_else_branches_rejoin(self):
        func = func_of("""
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
        """)
        cfg = build_cfg(func)
        test_block = cfg.block_of_stmt[id(func.body[0])]
        return_block = cfg.block_of_stmt[id(func.body[1])]
        # Both arms are successors of the test, and both reach the join.
        assert len(cfg.blocks[test_block].succs) == 2
        assert len(cfg.preds(return_block)) >= 1
        assert return_block in cfg.reachable()

    def test_return_links_to_exit_and_kills_fallthrough(self):
        func = func_of("""
            def f():
                return 1
                unreachable = 2
        """)
        cfg = build_cfg(func)
        return_block = cfg.block_of_stmt[id(func.body[0])]
        dead_block = cfg.block_of_stmt[id(func.body[1])]
        assert cfg.exit in cfg.blocks[return_block].succs
        assert dead_block not in cfg.reachable()

    def test_while_else_break_skips_else(self):
        func = func_of("""
            def f(xs):
                while xs:
                    if xs[0]:
                        break
                    xs = xs[1:]
                else:
                    flag = 1
                return xs
        """)
        cfg = build_cfg(func)
        while_stmt = func.body[0]
        else_block = cfg.block_of_stmt[id(while_stmt.orelse[0])]
        break_stmt = while_stmt.body[0].body[0]
        break_block = cfg.block_of_stmt[id(break_stmt)]
        after_block = cfg.block_of_stmt[id(func.body[1])]
        # break jumps straight to after-the-loop, never into else.
        assert after_block in cfg.blocks[break_block].succs
        assert else_block not in cfg.blocks[break_block].succs
        # normal exhaustion runs else, which falls into after.
        header_block = cfg.block_of_stmt[id(while_stmt)]
        assert else_block in cfg.blocks[header_block].succs
        reachable_from_else = {else_block}
        frontier = [else_block]
        while frontier:
            for succ in cfg.blocks[frontier.pop()].succs:
                if succ not in reachable_from_else:
                    reachable_from_else.add(succ)
                    frontier.append(succ)
        assert after_block in reachable_from_else

    def test_for_loop_has_back_edge(self):
        func = func_of("""
            def f(xs):
                total = 0
                for x in xs:
                    total += x
                return total
        """)
        cfg = build_cfg(func)
        for_stmt = func.body[1]
        header = cfg.block_of_stmt[id(for_stmt)]
        body = cfg.block_of_stmt[id(for_stmt.body[0])]
        assert body in cfg.blocks[header].succs
        assert header in cfg.blocks[body].succs  # the back edge

    def test_try_body_blocks_edge_into_every_handler(self):
        func = func_of("""
            def f():
                try:
                    a = 1
                    b = 2
                except ValueError:
                    x = 1
                except KeyError:
                    y = 2
                return 0
        """)
        cfg = build_cfg(func)
        try_stmt = func.body[0]
        body_block = cfg.block_of_stmt[id(try_stmt.body[0])]
        handler_blocks = [cfg.block_of_stmt[id(h)]
                          for h in try_stmt.handlers]
        for handler_block in handler_blocks:
            assert handler_block in cfg.blocks[body_block].succs

    def test_finally_runs_on_both_the_normal_and_handled_paths(self):
        func = func_of("""
            def f():
                try:
                    a = 1
                except ValueError:
                    b = 2
                finally:
                    c = 3
                return c
        """)
        cfg = build_cfg(func)
        try_stmt = func.body[0]
        final_block = cfg.block_of_stmt[id(try_stmt.finalbody[0])]
        body_block = cfg.block_of_stmt[id(try_stmt.body[0])]
        handler_block = cfg.block_of_stmt[id(try_stmt.handlers[0])]
        handler_exit = cfg.block_of_stmt[id(try_stmt.handlers[0].body[0])]
        assert final_block in cfg.blocks[body_block].succs
        assert final_block in cfg.blocks[handler_exit].succs \
            or final_block in cfg.blocks[handler_block].succs
        # finally re-raises as well as falls through.
        assert cfg.exit in cfg.blocks[final_block].succs

    def test_match_with_wildcard_has_no_fallthrough(self):
        func = func_of("""
            def f(x):
                match x:
                    case 1:
                        a = 1
                    case _:
                        a = 2
                return a
        """)
        cfg = build_cfg(func)
        match_stmt = func.body[0]
        match_block = cfg.block_of_stmt[id(match_stmt)]
        return_block = cfg.block_of_stmt[id(func.body[1])]
        # Every path out of the subject goes through a case body.
        assert return_block not in cfg.blocks[match_block].succs

    def test_match_without_wildcard_keeps_fallthrough(self):
        func = func_of("""
            def f(x):
                match x:
                    case 1:
                        a = 1
                return x
        """)
        cfg = build_cfg(func)
        match_stmt = func.body[0]
        match_block = cfg.block_of_stmt[id(match_stmt)]
        return_block = cfg.block_of_stmt[id(func.body[1])]
        assert return_block in cfg.blocks[match_block].succs


class TestDefinitionHarvest:
    def test_unpacking_and_augmented_targets(self):
        func = func_of("""
            def f(pair):
                a, b = pair
                a += 1
        """)
        unpack = definitions_of_stmt(func.body[0])
        assert {(name, kind) for name, kind, _ in unpack} \
            == {("a", "unpack"), ("b", "unpack")}
        aug = definitions_of_stmt(func.body[1])
        assert [(name, kind) for name, kind, _ in aug] == [("a", "aug")]

    def test_walrus_in_condition_binds(self):
        func = func_of("""
            def f(xs):
                if (n := len(xs)) > 3:
                    return n
                return 0
        """)
        names = {name for name, _, _ in definitions_of_stmt(func.body[0])}
        assert names == {"n"}

    def test_comprehension_targets_harvested_once(self):
        func = func_of("""
            def f(xs):
                if sum(y for y in xs) > 0:
                    pass
                return 0
        """)
        defs = definitions_of_stmt(func.body[0])
        assert [(name, kind) for name, kind, _ in defs] == [("y", "comp")]

    def test_nested_statement_bodies_are_not_double_harvested(self):
        func = func_of("""
            def f(xs):
                for x in xs:
                    inner = x
        """)
        for_defs = definitions_of_stmt(func.body[0])
        # The for statement binds only its own target; `inner` belongs
        # to the body statement placed in the body block.
        assert [(name, kind) for name, kind, _ in for_defs] \
            == [("x", "iter")]

    def test_with_as_except_as_and_imports_bind(self):
        func = func_of("""
            def f(path):
                import json as j
                with open(path) as handle:
                    try:
                        data = j.load(handle)
                    except ValueError as error:
                        data = repr(error)
                return data
        """)
        import_names = {n for n, _, _
                        in definitions_of_stmt(func.body[0])}
        with_names = {n for n, _, _ in definitions_of_stmt(func.body[1])}
        handler = func.body[1].body[0].handlers[0]
        except_names = {n for n, _, _ in definitions_of_stmt(handler)}
        assert import_names == {"j"}
        assert with_names == {"handle"}
        assert except_names == {"error"}


class TestReachingDefinitions:
    def test_defs_before_a_possible_raise_reach_the_handler(self):
        func = func_of("""
            def f():
                before = 1
                try:
                    risky = compute()
                    after = 2
                except ValueError:
                    use = before
                return 0
        """)
        flow = FunctionDataflow(func)
        handler = func.body[1].handlers[0]
        handler_block = flow.cfg.block_of_stmt[id(handler)]
        names = flow.reaching.names_reaching_block(handler_block)
        assert "before" in names
        assert "risky" in names  # conservative: the raise may follow it

    def test_branch_join_merges_both_definitions(self):
        func = func_of("""
            def f(flag):
                if flag:
                    value = make_a()
                else:
                    value = 7
                return value
        """)
        flow = FunctionDataflow(func)
        origins = flow.origins_of_name("value", func.body[1])
        assert origins == {"call:make_a", "lit:int"}

    def test_redefinition_kills_upstream_origin(self):
        func = func_of("""
            def f():
                value = "text"
                value = 7
                return value
        """)
        flow = FunctionDataflow(func)
        origins = flow.origins_of_name("value", func.body[2])
        assert origins == {"lit:int"}

    def test_loop_carried_definition_reaches_the_header(self):
        func = func_of("""
            def f(xs):
                total = 0
                for x in xs:
                    total = total + x
                return total
        """)
        flow = FunctionDataflow(func)
        return_block = flow.cfg.block_of_stmt[id(func.body[2])]
        reaching = flow.reaching.defs_reaching_block(return_block)
        totals = [d for d in reaching if d.name == "total"]
        assert len(totals) == 2  # the init and the loop-carried def


class TestOrigins:
    def test_param_attribute_call_and_const_origins(self):
        func = func_of("""
            def f(pmd, k):
                a = pmd.opt_number
                b = TCORConfig(k)
                c = NO_NEXT_USE_RANK
                return a, b, c
        """)
        flow = FunctionDataflow(func)
        at = func.body[3]
        assert flow.origins_of_name("a", at) == {"attr:opt_number"}
        assert flow.origins_of_name("b", at) == {"call:TCORConfig"}
        assert flow.origins_of_name("c", at) == {"const:NO_NEXT_USE_RANK"}
        assert flow.origins_of_name("k", at) == {"param:k"}

    def test_import_alias_canonicalizes_call_origin(self):
        tree = ast.parse(dedent("""
            from concurrent.futures import ProcessPoolExecutor as Pool

            def f():
                pool = Pool()
                return pool
        """))
        func = tree.body[1]
        from repro.lint.core import import_aliases
        flow = FunctionDataflow(func, import_aliases(tree))
        origins = flow.origins_of_name("pool", func.body[1])
        assert origins == {"call:concurrent.futures.ProcessPoolExecutor"}

    def test_global_declaration_dominates(self):
        func = func_of("""
            def f():
                global COUNTER
                COUNTER = COUNTER + 1
                return COUNTER
        """)
        flow = FunctionDataflow(func)
        assert flow.origins_of_name("COUNTER", func.body[2]) \
            == {"global:COUNTER"}
