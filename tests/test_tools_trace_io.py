"""Trace export/import round-trips."""

import io
import subprocess
import sys

import pytest

from repro.tools.trace_io import dump_trace, load_trace


def test_roundtrip_preserves_every_event(tiny_workload):
    trace = tiny_workload.traces[0]
    buffer = io.StringIO()
    count = dump_trace(trace, buffer)
    assert count == len(trace.build_events) + len(trace.fetch_events)
    buffer.seek(0)
    build, fetch = load_trace(buffer)
    assert build == trace.build_events
    assert fetch == trace.fetch_events


def test_pmds_survive_the_bitfield_encoding(tiny_workload):
    trace = tiny_workload.traces[0]
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    buffer.seek(0)
    build, _fetch = load_trace(buffer)
    originals = [e for e in trace.build_events if hasattr(e, "pmd")]
    restored = [e for e in build if hasattr(e, "pmd")]
    assert [e.pmd for e in originals] == [e.pmd for e in restored]


def test_blank_lines_tolerated():
    build, fetch = load_trace(io.StringIO("\n\n"))
    assert build == [] and fetch == []


def test_cli_dump_and_stats(tmp_path):
    out = tmp_path / "trace.jsonl"
    dump = subprocess.run(
        [sys.executable, "-m", "repro.tools.trace_io", "dump",
         "--benchmark", "GTr", "--scale", "0.05", "--out", str(out)],
        capture_output=True, text=True, timeout=300)
    assert dump.returncode == 0, dump.stderr
    assert out.exists()
    stats = subprocess.run(
        [sys.executable, "-m", "repro.tools.trace_io", "stats", str(out)],
        capture_output=True, text=True, timeout=120)
    assert stats.returncode == 0
    assert "AttributeRead" in stats.stdout
    assert "TileDone" in stats.stdout
